package core

import (
	"bytes"
	"runtime"
	"sync"
	"testing"
	"time"
)

// The tests here cover the parallel drain machinery: the ScrubWorkers
// knob, concurrent Flush under live writers, the claim set that keeps
// workers off each other's stripes, and the ordering guarantees of the
// parallel RepairDisk sweep.

func TestScrubWorkersDefault(t *testing.T) {
	s, _ := openTest(t, Options{Mode: Afraid, StripeUnit: testUnit, DisableScrubber: true})
	want := runtime.GOMAXPROCS(0)
	if dd := s.geo.DataDisks(); want > dd {
		want = dd
	}
	if got := s.scrubWorkers(); got != want {
		t.Fatalf("default scrubWorkers = %d, want min(GOMAXPROCS, data disks) = %d", got, want)
	}

	s2, _ := openTest(t, Options{Mode: Afraid, StripeUnit: testUnit, DisableScrubber: true, ScrubWorkers: 3})
	if got := s2.scrubWorkers(); got != 3 {
		t.Fatalf("scrubWorkers with override = %d, want 3", got)
	}
}

// TestFlushUnderConcurrentWrites hammers a multi-worker Flush with
// live writers and a live scrubber: Flush must terminate, and after
// the writers stop a final Flush must leave every stripe's parity
// consistent. Run with -race: the claim set, the io-worker pool, and
// the pooled stripe arenas all cross goroutines here.
func TestFlushUnderConcurrentWrites(t *testing.T) {
	opts := Options{Mode: Afraid, StripeUnit: testUnit, ScrubIdle: 2 * time.Millisecond,
		DirtyThreshold: 8, ScrubWorkers: 4}
	devs := newDevs(5)
	s, err := Open(devs, &MemNVRAM{}, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const writers = 4
	region := s.Capacity() / writers
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := pattern(testUnit, byte(w))
			base := int64(w) * region
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				off := base + int64(i%32)*testUnit
				if _, err := s.WriteAt(buf, off); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	// Flushes racing the writers: each must drain to zero dirty stripes
	// at some instant, even though writers immediately re-dirty.
	for i := 0; i < 20; i++ {
		if err := s.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()

	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	bad, err := s.CheckParity()
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) != 0 {
		t.Fatalf("parity inconsistent after concurrent flushes: %v", bad)
	}
}

// gatedDev blocks every ReadAt while the gate is armed, and signals
// the first blocked reader's arrival. It lets a test freeze a parity
// rebuild mid-read, deterministically, at the point where the drain
// worker holds the stripe lock.
type gatedDev struct {
	BlockDevice
	mu      sync.Mutex
	gate    chan struct{}
	entered chan struct{}
	once    *sync.Once
}

func (d *gatedDev) arm() {
	d.mu.Lock()
	d.gate = make(chan struct{})
	d.entered = make(chan struct{})
	d.once = new(sync.Once)
	d.mu.Unlock()
}

func (d *gatedDev) release() {
	d.mu.Lock()
	if d.gate != nil {
		close(d.gate)
		d.gate = nil
	}
	d.mu.Unlock()
}

func (d *gatedDev) ReadAt(p []byte, off int64) (int, error) {
	d.mu.Lock()
	gate, entered, once := d.gate, d.entered, d.once
	d.mu.Unlock()
	if gate != nil {
		once.Do(func() { close(entered) })
		<-gate
	}
	return d.BlockDevice.ReadAt(p, off)
}

// TestParallelFlushDoesNotUnmarkReDirtiedStripe pins down the ordering
// guarantee of the drain: scrubOne unmarks a stripe only while holding
// its stripe lock, so a write that re-dirties the stripe serializes
// after the rebuild and its fresh mark survives. The test freezes a
// multi-worker Flush mid-rebuild with a gated device, lands a write on
// the same stripe (which must block), then verifies the write's data
// is redundant — if the unmark had clobbered the re-dirty, the final
// parity check would flag the stripe.
func TestParallelFlushDoesNotUnmarkReDirtiedStripe(t *testing.T) {
	gated := &gatedDev{BlockDevice: NewMemDevice(testDisk)}
	devs := newDevs(5)
	devs[0] = gated
	s, err := Open(devs, &MemNVRAM{}, Options{Mode: Afraid, StripeUnit: testUnit,
		DisableScrubber: true, ScrubWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	old := pattern(testUnit, 1)
	if _, err := s.WriteAt(old, 0); err != nil { // dirties stripe 0
		t.Fatal(err)
	}

	gated.arm()
	flushDone := make(chan error, 1)
	go func() { flushDone <- s.Flush() }()
	<-gated.entered // a drain worker is mid-rebuild, stripe lock held

	// A re-dirtying write to the same stripe must wait for the rebuild.
	fresh := pattern(testUnit, 2)
	writeDone := make(chan error, 1)
	go func() {
		_, err := s.WriteAt(fresh, 0)
		writeDone <- err
	}()
	select {
	case err := <-writeDone:
		t.Fatalf("write to stripe under rebuild completed early (err=%v); stripe lock not held", err)
	case <-time.After(20 * time.Millisecond):
	}

	gated.release()
	if err := <-flushDone; err != nil {
		t.Fatal(err)
	}
	if err := <-writeDone; err != nil {
		t.Fatal(err)
	}

	// The fresh data must read back and, after a final drain, verify:
	// a lost mark would leave stale parity that CheckParity flags.
	got := make([]byte, testUnit)
	if _, err := s.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, fresh) {
		t.Fatal("re-dirtying write's data lost")
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	bad, err := s.CheckParity()
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) != 0 {
		t.Fatalf("stripe parity stale after re-dirty during flush: %v", bad)
	}
}

// TestParallelParityPointAndCheckParity verifies the worker-pool
// versions agree with the semantics of the serial ones: CheckParity
// reports exactly the dirty stripes in ascending order, and a
// multi-stripe ParityPoint clears exactly its span.
func TestParallelParityPointAndCheckParity(t *testing.T) {
	s, _ := openTest(t, Options{Mode: Afraid, StripeUnit: testUnit,
		DisableScrubber: true, ScrubWorkers: 4})
	span := s.geo.StripeDataBytes()

	dirty := []int64{2, 3, 5, 9, 17, 33}
	for _, st := range dirty {
		if _, err := s.WriteAt(pattern(testUnit, byte(st)), st*span); err != nil {
			t.Fatal(err)
		}
	}
	bad, err := s.CheckParity()
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) != len(dirty) {
		t.Fatalf("CheckParity = %v, want %v", bad, dirty)
	}
	for i, st := range bad {
		if st != dirty[i] {
			t.Fatalf("CheckParity = %v, want %v (ascending)", bad, dirty)
		}
	}

	// Commit stripes 2..9 (covers dirty 2,3,5,9); 17 and 33 stay exposed.
	if err := s.ParityPoint(2*span, 8*span); err != nil {
		t.Fatal(err)
	}
	bad, err = s.CheckParity()
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) != 2 || bad[0] != 17 || bad[1] != 33 {
		t.Fatalf("CheckParity after partial parity point = %v, want [17 33]", bad)
	}
	if got := s.DirtyStripes(); got != 2 {
		t.Fatalf("DirtyStripes = %d, want 2", got)
	}
}

// TestRepairReportSorted verifies the parallel repair sweep: stripes
// complete out of order across workers, but the damage report must
// come back merged and sorted by offset, and cover exactly the stripes
// that were dirty at failure time.
func TestRepairReportSorted(t *testing.T) {
	s, _ := openTest(t, Options{Mode: Afraid, StripeUnit: testUnit,
		DisableScrubber: true, ScrubWorkers: 4})
	span := s.geo.StripeDataBytes()

	dirty := []int64{1, 4, 7, 19, 23, 40, 41, 42, 60}
	for _, st := range dirty {
		if _, err := s.WriteAt(pattern(testUnit, byte(st)), st*span); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.FailDisk(2); err != nil {
		t.Fatal(err)
	}
	report, err := s.RepairDisk(2, NewMemDevice(testDisk))
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Lost) == 0 {
		t.Fatal("dirty stripes at failure produced no damage report")
	}
	for i := 1; i < len(report.Lost); i++ {
		if report.Lost[i].Offset <= report.Lost[i-1].Offset {
			t.Fatalf("damage report out of order at %d: %+v", i, report.Lost)
		}
	}
	lostStripes := make(map[int64]bool)
	for _, d := range report.Lost {
		lostStripes[d.Stripe] = true
	}
	for st := range lostStripes {
		found := false
		for _, d := range dirty {
			if d == st {
				found = true
			}
		}
		if !found {
			t.Fatalf("stripe %d reported lost but was never dirty", st)
		}
	}
	// The array must be fully redundant after repair.
	if bad, err := s.CheckParity(); err != nil || len(bad) != 0 {
		t.Fatalf("after repair: bad=%v err=%v", bad, err)
	}
}
