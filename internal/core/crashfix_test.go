package core

import (
	"bytes"
	"sync"
	"testing"
)

// TestAfraid6FlushRebuildsTornP: in Afraid6 (deferred Q), a marked
// stripe can carry a *torn* synchronous P write after a crash. The
// scrubber must rewrite BOTH parities before unmarking, or the stale P
// survives as latent corruption that only surfaces on the next disk
// loss.
func TestAfraid6FlushRebuildsTornP(t *testing.T) {
	const unit = 512
	devs := make([]BlockDevice, 5)
	mems := make([]*MemDevice, 5)
	for i := range devs {
		mems[i] = NewMemDevice(16 * unit)
		devs[i] = mems[i]
	}
	s, err := Open(devs, &MemNVRAM{}, Options{Mode: Afraid6, StripeUnit: unit, DisableScrubber: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	p := bytes.Repeat([]byte{0x3c}, unit)
	if _, err := s.WriteAt(p, 0); err != nil {
		t.Fatal(err)
	}
	// Stripe 0 is marked (Q deferred). Simulate the crash-torn P write:
	// garbage lands where the synchronous P update went.
	geo := s.Geometry()
	pDisk := geo.ParityDisk(0)
	if _, err := mems[pDisk].WriteAt(bytes.Repeat([]byte{0xFF}, unit), geo.DiskOffset(0)); err != nil {
		t.Fatal(err)
	}

	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	bad, err := s.CheckParity()
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) != 0 {
		t.Fatalf("flush left stale parity on stripes %v (scrub must rewrite P as well as Q)", bad)
	}
}

// gatedDevice blocks its blockAt-th write until the gate is released,
// letting a test freeze a repair sweep mid-array deterministically.
type gatedDevice struct {
	*MemDevice
	mu      sync.Mutex
	writes  int
	blockAt int
	gate    chan struct{}
	reached chan struct{}
}

func (g *gatedDevice) WriteAt(p []byte, off int64) (int, error) {
	g.mu.Lock()
	g.writes++
	hit := g.writes == g.blockAt
	g.mu.Unlock()
	if hit {
		close(g.reached)
		<-g.gate
	}
	return g.MemDevice.WriteAt(p, off)
}

// TestRepairMirrorsConcurrentDegradedWrites: while RepairDisk sweeps
// stripes onto a replacement, degraded writes to already-swept stripes
// must be mirrored there — otherwise the replacement is swapped in
// holding stale data. The replacement is gated so the sweep blocks at
// stripe 100 (it writes the replacement exactly once per stripe); the
// test then writes stripes the sweep has passed and releases the gate.
func TestRepairMirrorsConcurrentDegradedWrites(t *testing.T) {
	const (
		unit    = 512
		stripes = 256
	)
	devs := make([]BlockDevice, 4)
	for i := range devs {
		devs[i] = NewMemDevice(stripes * unit)
	}
	s, err := Open(devs, &MemNVRAM{}, Options{Mode: Afraid, StripeUnit: unit, DisableScrubber: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	sdb := s.Geometry().StripeDataBytes()
	fill := func(tag byte, stripe int64) []byte {
		return bytes.Repeat([]byte{tag, byte(stripe)}, int(sdb)/2)
	}
	for st := int64(0); st < stripes; st++ {
		if _, err := s.WriteAt(fill(0xA0, st), st*sdb); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := s.FailDisk(1); err != nil {
		t.Fatal(err)
	}

	rep := &gatedDevice{
		MemDevice: NewMemDevice(stripes * unit),
		blockAt:   101, // the write for stripe 100: cursor has passed 0..99
		gate:      make(chan struct{}),
		reached:   make(chan struct{}),
	}
	done := make(chan struct{})
	var report DamageReport
	var repErr error
	go func() {
		defer close(done)
		report, repErr = s.RepairDisk(1, rep)
	}()

	<-rep.reached
	// The sweep is frozen inside stripe 100 (its lock is 100 % 64 = 36;
	// the stripes below avoid that pool slot). These writes land on
	// stripes the cursor already passed, so they must mirror.
	for st := int64(0); st < 30; st++ {
		if _, err := s.WriteAt(fill(0xB7, st), st*sdb); err != nil {
			t.Fatalf("degraded write stripe %d: %v", st, err)
		}
	}
	close(rep.gate)
	<-done
	if repErr != nil {
		t.Fatal(repErr)
	}
	if len(report.Lost) != 0 {
		t.Fatalf("repair reported loss on a flushed array: %+v", report.Lost)
	}

	// The replacement is live now; the rewritten stripes must serve the
	// post-sweep data, not the sweep-time reconstruction.
	for st := int64(0); st < stripes; st++ {
		tag := byte(0xA0)
		if st < 30 {
			tag = 0xB7
		}
		want := fill(tag, st)
		got := make([]byte, sdb)
		if _, err := s.ReadAt(got, st*sdb); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("stripe %d stale after repair raced degraded writes", st)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	bad, err := s.CheckParity()
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) != 0 {
		t.Fatalf("parity inconsistent after repair: stripes %v", bad)
	}
}
