package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"afraid/internal/layout"
	"afraid/internal/nvram"
	"afraid/internal/parity"
)

// Failer is implemented by devices that can be switched into a
// fail-stop state (MemDevice, fault-injection wrappers). FailDisk uses
// it to make the device itself start erroring, not just the store's
// bookkeeping.
type Failer interface {
	Fail()
}

// FailDisk injects a fail-stop failure of disk i. Subsequent reads of
// its units are served degraded (for clean stripes) and writes maintain
// parity synchronously. Only one failure can be outstanding (two on
// RAID 6 layouts).
func (s *Store) FailDisk(i int) error {
	if i < 0 || i >= len(s.devs) {
		return fmt.Errorf("core: disk %d out of range", i)
	}
	s.meta.Lock()
	defer s.meta.Unlock()
	if s.closed {
		return ErrClosed
	}
	switch {
	case s.dead < 0 || s.dead == i:
		s.dead = i
	case s.geo.Level == layout.RAID6 && (s.dead2 < 0 || s.dead2 == i):
		// RAID 6 absorbs a second failure.
		s.dead2 = i
	default:
		return ErrTooManyFailures
	}
	if f, ok := s.devs[i].(Failer); ok {
		f.Fail()
	}
	return nil
}

// DamagedRange is a client byte range whose contents were lost: it
// lived on the failed disk inside a stripe whose parity was stale.
type DamagedRange struct {
	Offset int64
	Length int64
	Stripe int64
}

// DamageReport lists the data lost during a repair. For a RAID 5 store
// (or an AFRAID store that was fully flushed) it is empty; for an
// AFRAID store it is bounded by the stripes that were dirty at failure
// time — the paper's key argument that the exposure is small and
// enumerable.
type DamageReport struct {
	Lost []DamagedRange
}

// Bytes returns the total bytes lost.
func (r DamageReport) Bytes() int64 {
	var n int64
	for _, d := range r.Lost {
		n += d.Length
	}
	return n
}

// RepairDisk replaces failed disk i with a fresh device and
// reconstructs its contents:
//
//   - clean stripes: the lost unit (data or parity) is rebuilt exactly
//     from the survivors;
//   - dirty stripes whose lost unit was parity: parity is recomputed
//     from the data (no loss);
//   - dirty stripes whose lost unit was data: the contents are gone —
//     the unit is zero-filled, parity is recomputed over the zeroed
//     stripe, and the range is recorded in the damage report.
//
// After a successful repair the array is fully redundant again.
func (s *Store) RepairDisk(i int, replacement BlockDevice) (DamageReport, error) {
	var report DamageReport
	if i < 0 || i >= len(s.devs) {
		return report, fmt.Errorf("core: disk %d out of range", i)
	}
	need := s.geo.DiskSize
	if s.opts.Checksums {
		need += s.geo.ChecksumTrailerBytes()
	}
	if replacement.Size() < need {
		return report, fmt.Errorf("core: replacement size %d smaller than member size %d",
			replacement.Size(), need)
	}
	s.meta.Lock()
	if s.closed {
		s.meta.Unlock()
		return report, ErrClosed
	}
	if s.dead != i && s.dead2 != i {
		s.meta.Unlock()
		return report, fmt.Errorf("core: disk %d is not a failed disk", i)
	}
	if s.repDisk >= 0 {
		s.meta.Unlock()
		return report, fmt.Errorf("core: repair of disk %d already in progress", s.repDisk)
	}
	// Publish the sweep so concurrent degraded writes mirror already-
	// repaired stripes onto the replacement (see repairTarget).
	s.repDisk, s.repDev, s.repDone = i, replacement, nvram.NewBitmap(s.geo.Stripes())
	mode := s.opts.Mode
	s.meta.Unlock()

	clearRepair := func() {
		s.meta.Lock()
		s.repDisk, s.repDev, s.repDone = -1, nil, nil
		s.meta.Unlock()
	}

	// The sweep: scrub workers stride an atomic cursor, each rebuilding
	// its stripe under that stripe's lock. Stripes complete out of
	// order, which is why repDone is a bitmap; each worker collects its
	// own damage list and the parts are merged and sorted afterwards.
	unit := s.geo.StripeUnit
	stripes := s.geo.Stripes()
	workers := s.scrubWorkers()
	if int64(workers) > stripes {
		workers = int(stripes)
	}
	var (
		cur      atomic.Int64
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	parts := make([]DamageReport, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(part *DamageReport) {
			defer wg.Done()
			for {
				stripe := cur.Add(1) - 1
				if stripe >= stripes {
					return
				}
				mu.Lock()
				stop := firstErr != nil
				mu.Unlock()
				if stop {
					return
				}
				lk := s.stripeLock(stripe)
				lk.Lock()
				// A survivor failing checksum verification mid-repair is
				// itself repaired from whatever redundancy remains and the
				// stripe retried; the damage list is truncated to this
				// worker's mark so an abandoned attempt cannot double-report.
				mark := len(part.Lost)
				var err error
				for tries := 0; ; tries++ {
					part.Lost = part.Lost[:mark]
					if s.geo.Level == layout.RAID6 {
						err = s.repairStripe6(stripe, i, replacement, part)
					} else {
						err = s.repairStripe(stripe, i, replacement, unit, mode, part)
					}
					if err == nil || tries >= s.spanRetryBudget() {
						break
					}
					var retry bool
					if retry, err = s.absorbMismatch(err); !retry {
						break
					}
				}
				if err != nil && errors.Is(err, ErrDataLoss) {
					// Corruption plus the dead disk exceed the stripe's
					// redundancy: salvage what is readable, zero and report
					// the rest, like a dirty stripe's lost data unit.
					part.Lost = part.Lost[:mark]
					err = s.salvageStripe(stripe, i, replacement, part)
				}
				if err == nil {
					// Set the done bit while still holding the stripe lock,
					// so a writer acquiring it next observes the bit and
					// mirrors its update onto the replacement.
					s.meta.Lock()
					s.repDone.Mark(stripe)
					s.meta.Unlock()
				}
				lk.Unlock()
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
			}
		}(&parts[w])
	}
	wg.Wait()
	if firstErr != nil {
		clearRepair()
		return report, firstErr
	}
	for _, p := range parts {
		report.Lost = append(report.Lost, p.Lost...)
	}
	sort.Slice(report.Lost, func(a, b int) bool {
		return report.Lost[a].Offset < report.Lost[b].Offset
	})

	// Swap under a full stripe-lock barrier. An in-flight degraded span
	// snapshots the dead set at entry; if the swap overlapped such a
	// span, its update could fall between the mirror path (repair no
	// longer published) and the normal path (swap not yet observed) and
	// be lost. Holding every lock in the pool drains in-flight spans
	// first; new ones then see the healthy array.
	for k := range s.locks {
		s.locks[k].Lock()
	}
	s.meta.Lock()
	s.devs[i] = replacement
	if s.dead == i {
		s.dead, s.dead2 = s.dead2, -1
	} else {
		s.dead2 = -1
	}
	s.repDisk, s.repDev, s.repDone = -1, nil, nil
	s.stats.DamagedStripes += uint64(len(report.Lost))
	s.stats.DamageBytes += report.Bytes()
	err := s.commitMarks()
	s.meta.Unlock()
	for k := range s.locks {
		s.locks[k].Unlock()
	}
	return report, err
}

// repairStripe reconstructs one stripe unit onto the replacement.
// Caller holds the stripe lock.
func (s *Store) repairStripe(stripe int64, dead int, replacement BlockDevice, unit int64, mode Mode, report *DamageReport) error {
	off := s.geo.DiskOffset(stripe)
	s.meta.Lock()
	dirty := mode != Raid0 && s.marks.IsMarked(stripe)
	pol := s.effectivePolicy(stripe)
	s.meta.Unlock()

	role, dataIdx := s.geo.RoleOf(stripe, dead)

	noParity := mode == Raid0 || pol == PolicyNeverRedundant

	if noParity && role == layout.Data {
		// Unprotected storage: contents gone, zero-fill and report.
		sb := s.getStripeBuf()
		defer s.putStripeBuf(sb)
		clear(sb.p)
		if _, err := replacement.WriteAt(sb.p, off); err != nil {
			return err
		}
		if err := s.putChecksumTo(replacement, stripe, sb.p); err != nil {
			return err
		}
		report.Lost = append(report.Lost, DamagedRange{
			Offset: stripe*s.geo.StripeDataBytes() + int64(dataIdx)*unit,
			Length: unit,
			Stripe: stripe,
		})
		return nil
	}

	sb := s.getStripeBuf()
	defer s.putStripeBuf(sb)

	switch {
	case role == layout.Parity:
		// Recompute parity from the data units (valid whether or not
		// the stripe was dirty), clearing any mark.
		if err := s.readStripeUnits(sb, stripe, -1, -1); err != nil {
			return fmt.Errorf("core: repair: %w", err)
		}
		parity.Compute(sb.p, sb.units...)
		if _, err := replacement.WriteAt(sb.p, off); err != nil {
			return err
		}
		if err := s.putChecksumTo(replacement, stripe, sb.p); err != nil {
			return err
		}
		s.clearMark(stripe)
		s.bumpRecovered()
		return nil

	case !dirty:
		// Clean stripe, lost data unit: exact reconstruction.
		if err := s.readStripeUnits(sb, stripe, dead, -1); err != nil {
			return fmt.Errorf("core: repair: %w", err)
		}
		if err := s.devRead(s.geo.ParityDisk(stripe), sb.p, off); err != nil {
			return err
		}
		lost := sb.units[dataIdx]
		parity.Reconstruct(lost, sb.p, sb.survivors(dataIdx)...)
		if _, err := replacement.WriteAt(lost, off); err != nil {
			return err
		}
		if err := s.putChecksumTo(replacement, stripe, lost); err != nil {
			return err
		}
		s.bumpRecovered()
		return nil

	default:
		// Dirty stripe, lost data unit: unrecoverable. Zero-fill,
		// recompute parity over the zeroed stripe, report the loss.
		if err := s.readStripeUnits(sb, stripe, dead, -1); err != nil {
			return fmt.Errorf("core: repair: %w", err)
		}
		clear(sb.units[dataIdx])
		if _, err := replacement.WriteAt(sb.units[dataIdx], off); err != nil {
			return err
		}
		if err := s.putChecksumTo(replacement, stripe, sb.units[dataIdx]); err != nil {
			return err
		}
		parity.Compute(sb.p, sb.units...)
		if err := s.devWrite(s.geo.ParityDisk(stripe), sb.p, off); err != nil {
			return err
		}
		s.clearMark(stripe)
		report.Lost = append(report.Lost, DamagedRange{
			Offset: stripe*s.geo.StripeDataBytes() + int64(dataIdx)*unit,
			Length: unit,
			Stripe: stripe,
		})
		return nil
	}
}

// clearMark unconditionally unmarks a stripe (on parity-bearing
// layouts).
func (s *Store) clearMark(stripe int64) {
	s.meta.Lock()
	if s.geo.Level != layout.RAID0 {
		s.marks.Unmark(stripe)
	}
	s.dropQuarantine(stripe)
	s.meta.Unlock()
}

// bumpRecovered counts an exactly-reconstructed stripe.
func (s *Store) bumpRecovered() {
	s.meta.Lock()
	s.stats.RecoveredStripes++
	s.meta.Unlock()
}

// salvageStripe handles a repair-sweep stripe where detected checksum
// corruption plus the dead disk exceed the stripe's redundancy. Every
// data unit that cannot be read back verified — a corrupt survivor, or
// the target's unreconstructable unit — is zeroed and reported lost,
// then the parities are recomputed over the zeroed image so later
// reads and repairs see a consistent stripe (zeroes where data was
// lost) instead of garbage behind a stale parity. Caller holds the
// stripe lock.
func (s *Store) salvageStripe(stripe int64, target int, replacement BlockDevice, report *DamageReport) error {
	unit := s.geo.StripeUnit
	off := s.geo.DiskOffset(stripe)
	s.meta.Lock()
	dead := s.deadSet()
	s.meta.Unlock()
	isDead := func(d int) bool { return containsInt(dead, d) }

	sb := s.getStripeBuf()
	defer s.putStripeBuf(sb)
	lose := func(i int) {
		clear(sb.units[i])
		report.Lost = append(report.Lost, DamagedRange{
			Offset: stripe*s.geo.StripeDataBytes() + int64(i)*unit,
			Length: unit,
			Stripe: stripe,
		})
	}
	for i := range sb.units {
		d := s.geo.DataDisk(stripe, i)
		if isDead(d) {
			lose(i)
			if d == target {
				if _, err := replacement.WriteAt(sb.units[i], off); err != nil {
					return err
				}
				if err := s.putChecksumTo(replacement, stripe, sb.units[i]); err != nil {
					return err
				}
			}
			continue
		}
		err := s.devRead(d, sb.units[i], off)
		if err == nil {
			continue
		}
		if !errors.Is(err, ErrChecksumMismatch) {
			return err
		}
		// Corrupt beyond repair: zero it in place (installing a fresh
		// slot) so the stripe converges instead of erroring forever.
		lose(i)
		if werr := s.devWrite(d, sb.units[i], off); werr != nil {
			return werr
		}
	}

	writeParity := func(d int, buf []byte) (bool, error) {
		switch {
		case d == target:
			if _, err := replacement.WriteAt(buf, off); err != nil {
				return false, err
			}
			return true, s.putChecksumTo(replacement, stripe, buf)
		case isDead(d):
			return false, nil
		default:
			return true, s.devWrite(d, buf, off)
		}
	}
	pDisk := s.geo.ParityDisk(stripe)
	if s.geo.Level == layout.RAID6 {
		parity.ComputePQ(sb.p, sb.q, sb.units...)
		pOK, err := writeParity(pDisk, sb.p)
		if err != nil {
			return err
		}
		qOK, err := writeParity(s.geo.QDisk(stripe), sb.q)
		if err != nil {
			return err
		}
		if pOK && qOK {
			s.clearMark(stripe)
		}
		return nil
	}
	parity.Compute(sb.p, sb.units...)
	pOK, err := writeParity(pDisk, sb.p)
	if err != nil {
		return err
	}
	if pOK {
		s.clearMark(stripe)
	}
	return nil
}
