package parity

import (
	"bytes"
	"testing"
)

// These tests pin the dispatch contract: whatever backend init selected,
// every dispatched kernel variable is byte-exact with its generic
// counterpart at odd lengths and unaligned base addresses, and never
// touches a byte outside its operands. On the generic fallback the
// comparison is trivially true; on avx2/neon it is the differential
// check of the assembly against the pure-Go oracle.

func TestKernelDispatch(t *testing.T) {
	switch k := Kernel(); k {
	case "avx2", "neon", "generic":
		t.Logf("parity kernel backend: %s", k)
	default:
		t.Fatalf("Kernel() = %q, want avx2, neon, or generic", k)
	}
}

// guarded carves an n-byte view at the given offset out of a larger
// backing array and returns view plus a function that verifies the
// bytes outside the view were never written.
func guarded(t *testing.T, n, off int, seed uint64) (view []byte, checkGuards func(what string)) {
	t.Helper()
	back := make([]byte, n+off+32)
	fill(back, seed)
	snap := append([]byte(nil), back...)
	view = back[off : off+n : off+n]
	return view, func(what string) {
		t.Helper()
		if !bytes.Equal(back[:off], snap[:off]) || !bytes.Equal(back[off+n:], snap[off+n:]) {
			t.Fatalf("%s (n=%d off=%d) wrote outside its operand", what, n, off)
		}
	}
}

var kernelTestLengths = []int{1, 3, 15, 16, 17, 31, 32, 33, 47, 63, 64, 65, 100, 127, 128, 129, 255, 256, 257, 1023, 4096, 4097}
var kernelTestOffsets = []int{0, 1, 3, 8, 15, 17, 31}

func TestXORKernelsMatchGenericUnaligned(t *testing.T) {
	for _, n := range kernelTestLengths {
		for _, off := range kernelTestOffsets {
			srcs := make([][]byte, 4)
			for i := range srcs {
				// Each source gets its own backing at its own offset, so
				// operands never alias or share cachelines predictably.
				s, _ := guarded(t, n, (off+i*7)%32, uint64(n*100+off*10+i))
				srcs[i] = s
			}
			for k := 1; k <= 4; k++ {
				want, _ := guarded(t, n, 0, uint64(n+off))
				got, check := guarded(t, n, off, uint64(n+off))
				copy(want, got)
				switch k {
				case 1:
					xorGeneric(want, srcs[0])
					xorKernel(got, srcs[0])
				case 2:
					xorInto2Generic(want, srcs[0], srcs[1])
					xorInto2Kernel(got, srcs[0], srcs[1])
				case 3:
					xorInto3Generic(want, srcs[0], srcs[1], srcs[2])
					xorInto3Kernel(got, srcs[0], srcs[1], srcs[2])
				case 4:
					xorInto4Generic(want, srcs[0], srcs[1], srcs[2], srcs[3])
					xorInto4Kernel(got, srcs[0], srcs[1], srcs[2], srcs[3])
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("xor kernel arity %d diverges from generic (n=%d off=%d, backend=%s)", k, n, off, Kernel())
				}
				check("xor kernel")
			}
		}
	}
}

func TestGFKernelsMatchGenericUnaligned(t *testing.T) {
	coeffs := []byte{0, 1, 2, 3, 29, 128, 255}
	for _, n := range kernelTestLengths {
		for _, off := range kernelTestOffsets {
			src, _ := guarded(t, n, (off+5)%32, uint64(n*7+off))
			old, _ := guarded(t, n, (off+11)%32, uint64(n*13+off))
			for _, c := range coeffs {
				// dst ^= c*src
				want, _ := guarded(t, n, 0, uint64(n+off+int(c)))
				got, check := guarded(t, n, off, uint64(n+off+int(c)))
				copy(want, got)
				gfMulXorGeneric(want, src, c)
				gfMulXorKernel(got, src, c)
				if !bytes.Equal(got, want) {
					t.Fatalf("gfMulXor diverges (n=%d off=%d c=%d, backend=%s)", n, off, c, Kernel())
				}
				check("gfMulXor")

				// p ^= src, q ^= c*src
				wp, _ := guarded(t, n, 0, uint64(n+1))
				wq, _ := guarded(t, n, 0, uint64(n+2))
				gp, checkP := guarded(t, n, off, uint64(n+1))
				gq, checkQ := guarded(t, n, (off+13)%32, uint64(n+2))
				copy(wp, gp)
				copy(wq, gq)
				foldPQGeneric(wp, wq, src, c)
				gfFoldPQKernel(gp, gq, src, c)
				if !bytes.Equal(gp, wp) || !bytes.Equal(gq, wq) {
					t.Fatalf("gfFoldPQ diverges (n=%d off=%d c=%d, backend=%s)", n, off, c, Kernel())
				}
				checkP("gfFoldPQ p")
				checkQ("gfFoldPQ q")

				// q ^= c*(old^new)
				wu, _ := guarded(t, n, 0, uint64(n+3))
				gu, checkU := guarded(t, n, off, uint64(n+3))
				copy(wu, gu)
				mulUpdateGeneric(wu, old, src, c)
				gfMulUpdKernel(gu, old, src, c)
				if !bytes.Equal(gu, wu) {
					t.Fatalf("gfMulUpd diverges (n=%d off=%d c=%d, backend=%s)", n, off, c, Kernel())
				}
				checkU("gfMulUpd")
			}
		}
	}
}

// FuzzGFKernels differential-fuzzes the dispatched GF(2^8) kernels
// against the generic table kernels at arbitrary lengths, coefficients,
// and base offsets. On the generic fallback this degenerates to a
// self-comparison, which keeps the corpus portable across machines.
func FuzzGFKernels(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9}, byte(29), uint8(1))
	f.Add(bytes.Repeat([]byte{0xaa}, 100), byte(2), uint8(17))
	f.Add(bytes.Repeat([]byte{0xff}, 64), byte(255), uint8(31))
	f.Add([]byte{0}, byte(0), uint8(0))
	f.Fuzz(func(t *testing.T, src []byte, c byte, off uint8) {
		n := len(src)
		if n == 0 {
			return
		}
		o := int(off % 32)
		place := func(seed uint64) []byte {
			back := make([]byte, n+64)
			fill(back, seed)
			return back[o : o+n : o+n]
		}
		unaligned := func(b []byte) []byte {
			back := make([]byte, n+64)
			copy(back[o:], b)
			return back[o : o+n : o+n]
		}
		usrc := unaligned(src)

		// Oracle and dispatched kernel each run on their own copy of the
		// operands, every slice based at offset o into a fresh backing
		// array, so the asm sees arbitrary (fuzz-chosen) base alignment.
		d1 := place(uint64(n) + uint64(c))
		d2 := unaligned(d1)
		gfMulXorGeneric(d1, usrc, c)
		gfMulXorKernel(d2, usrc, c)
		if !bytes.Equal(d1, d2) {
			t.Fatalf("gfMulXor diverges from generic (n=%d c=%d off=%d)", n, c, o)
		}

		p1, q1 := place(3), place(4)
		p2, q2 := unaligned(p1), unaligned(q1)
		foldPQGeneric(p1, q1, usrc, c)
		gfFoldPQKernel(p2, q2, usrc, c)
		if !bytes.Equal(p1, p2) || !bytes.Equal(q1, q2) {
			t.Fatalf("gfFoldPQ diverges from generic (n=%d c=%d off=%d)", n, c, o)
		}

		old := place(5)
		u1 := place(6)
		u2 := unaligned(u1)
		mulUpdateGeneric(u1, old, usrc, c)
		gfMulUpdKernel(u2, old, usrc, c)
		if !bytes.Equal(u1, u2) {
			t.Fatalf("gfMulUpd diverges from generic (n=%d c=%d off=%d)", n, c, o)
		}
	})
}
