//go:build noasm

package parity

import "testing"

// With the noasm tag the assembly and the arch init()s are compiled out,
// so dispatch must report the portable backend on every platform.
func TestNoasmForcesGenericKernel(t *testing.T) {
	if k := Kernel(); k != "generic" {
		t.Fatalf("Kernel() = %q under -tags noasm, want generic", k)
	}
}
