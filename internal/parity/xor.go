// Package parity implements the redundancy codecs used by the array:
// single-parity XOR (RAID 5 / AFRAID) and the GF(2^8) P+Q pair used for
// the paper's §5 RAID 6 extension.
package parity

import "fmt"

// XOR computes dst ^= src for equal-length blocks. It panics on length
// mismatch: block sizes are fixed per array and a mismatch is a bug.
func XOR(dst, src []byte) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("parity: XOR length mismatch %d != %d", len(dst), len(src)))
	}
	// Word-at-a-time main loop; the compiler vectorizes this well.
	n := len(dst)
	i := 0
	for ; i+8 <= n; i += 8 {
		dst[i] ^= src[i]
		dst[i+1] ^= src[i+1]
		dst[i+2] ^= src[i+2]
		dst[i+3] ^= src[i+3]
		dst[i+4] ^= src[i+4]
		dst[i+5] ^= src[i+5]
		dst[i+6] ^= src[i+6]
		dst[i+7] ^= src[i+7]
	}
	for ; i < n; i++ {
		dst[i] ^= src[i]
	}
}

// Compute writes the XOR parity of blocks into p. All blocks and p must
// have the same length. At least one block is required.
func Compute(p []byte, blocks ...[]byte) {
	if len(blocks) == 0 {
		panic("parity: Compute with no blocks")
	}
	copy(p, blocks[0])
	if len(p) != len(blocks[0]) {
		panic("parity: Compute parity/block length mismatch")
	}
	for _, b := range blocks[1:] {
		XOR(p, b)
	}
}

// Reconstruct recovers a single missing block given the parity block and
// the surviving data blocks, writing the result into dst.
func Reconstruct(dst, p []byte, survivors ...[]byte) {
	copy(dst, p)
	if len(dst) != len(p) {
		panic("parity: Reconstruct dst/parity length mismatch")
	}
	for _, b := range survivors {
		XOR(dst, b)
	}
}

// Update applies the RAID 5 read-modify-write parity delta: given the
// parity block p, the old contents of a data block, and its new
// contents, it updates p in place to be consistent with the new data.
func Update(p, oldData, newData []byte) {
	XOR(p, oldData)
	XOR(p, newData)
}

// Check reports whether p equals the XOR of blocks.
func Check(p []byte, blocks ...[]byte) bool {
	tmp := make([]byte, len(p))
	Compute(tmp, blocks...)
	for i := range tmp {
		if tmp[i] != p[i] {
			return false
		}
	}
	return true
}
