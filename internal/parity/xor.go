// Package parity implements the redundancy codecs used by the array:
// single-parity XOR (RAID 5 / AFRAID) and the GF(2^8) P+Q pair used for
// the paper's §5 RAID 6 extension.
//
// The kernels run word-wise: equal-length blocks are folded eight bytes
// at a time over uint64 lanes (encoding/binary loads, which the
// compiler lowers to single unaligned MOVs on little- and big-endian
// machines alike), with a byte tail for the remainder. The multi-source
// gather kernel XORInto folds k sources in one pass over dst, so the
// destination cacheline is loaded and stored once instead of k times.
package parity

import (
	"encoding/binary"
	"fmt"
)

// wordSize is the lane width of the folding kernels.
const wordSize = 8

// XOR computes dst ^= src for equal-length blocks. It panics on length
// mismatch: block sizes are fixed per array and a mismatch is a bug.
func XOR(dst, src []byte) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("parity: XOR length mismatch %d != %d", len(dst), len(src)))
	}
	xorKernel(dst, src)
}

func xorGeneric(dst, src []byte) {
	n := len(dst)
	i := 0
	// Four uint64 lanes per iteration: the independent loads/xors
	// pipeline, and the compiler can merge them into wider vector ops.
	for ; i+4*wordSize <= n; i += 4 * wordSize {
		d := dst[i : i+4*wordSize : i+4*wordSize]
		s := src[i : i+4*wordSize : i+4*wordSize]
		v0 := binary.LittleEndian.Uint64(d[0:]) ^ binary.LittleEndian.Uint64(s[0:])
		v1 := binary.LittleEndian.Uint64(d[8:]) ^ binary.LittleEndian.Uint64(s[8:])
		v2 := binary.LittleEndian.Uint64(d[16:]) ^ binary.LittleEndian.Uint64(s[16:])
		v3 := binary.LittleEndian.Uint64(d[24:]) ^ binary.LittleEndian.Uint64(s[24:])
		binary.LittleEndian.PutUint64(d[0:], v0)
		binary.LittleEndian.PutUint64(d[8:], v1)
		binary.LittleEndian.PutUint64(d[16:], v2)
		binary.LittleEndian.PutUint64(d[24:], v3)
	}
	for ; i+wordSize <= n; i += wordSize {
		d := dst[i : i+wordSize : i+wordSize]
		v := binary.LittleEndian.Uint64(d) ^ binary.LittleEndian.Uint64(src[i:])
		binary.LittleEndian.PutUint64(d, v)
	}
	for ; i < n; i++ {
		dst[i] ^= src[i]
	}
}

// XORInto folds every source into dst in a single pass: for each word
// of dst it loads the corresponding word of all k sources, xors them
// together, and stores once. Compared to k sequential XOR calls this
// halves the memory traffic on dst (one load + one store total instead
// of k of each), which is where the rebuild path's time goes once the
// per-byte arithmetic is gone. All sources must match dst's length.
func XORInto(dst []byte, srcs ...[]byte) {
	for _, s := range srcs {
		if len(s) != len(dst) {
			panic(fmt.Sprintf("parity: XORInto length mismatch %d != %d", len(dst), len(s)))
		}
	}
	// Dispatch to arity-specialized folds: keeping each source in a
	// local lets the compiler hold its base pointer in a register, so
	// the inner loop is pure loads/xors/one store. Larger fan-ins fold
	// four sources per pass — dst is touched ceil(k/4) times instead of
	// k, which is still where the memory-traffic win lives.
	for len(srcs) > 4 {
		xorInto4Kernel(dst, srcs[0], srcs[1], srcs[2], srcs[3])
		srcs = srcs[4:]
	}
	switch len(srcs) {
	case 1:
		xorKernel(dst, srcs[0])
	case 2:
		xorInto2Kernel(dst, srcs[0], srcs[1])
	case 3:
		xorInto3Kernel(dst, srcs[0], srcs[1], srcs[2])
	case 4:
		xorInto4Kernel(dst, srcs[0], srcs[1], srcs[2], srcs[3])
	}
}

// The arity-specialized folds mirror XOR's shape: four uint64 lanes
// per iteration, with capped per-iteration subslices so every bounds
// check hoists out of the lane loads.

func xorInto2Generic(dst, a, b []byte) {
	n := len(dst)
	i := 0
	for ; i+4*wordSize <= n; i += 4 * wordSize {
		d := dst[i : i+4*wordSize : i+4*wordSize]
		s0 := a[i : i+4*wordSize : i+4*wordSize]
		s1 := b[i : i+4*wordSize : i+4*wordSize]
		v0 := binary.LittleEndian.Uint64(d[0:]) ^ binary.LittleEndian.Uint64(s0[0:]) ^ binary.LittleEndian.Uint64(s1[0:])
		v1 := binary.LittleEndian.Uint64(d[8:]) ^ binary.LittleEndian.Uint64(s0[8:]) ^ binary.LittleEndian.Uint64(s1[8:])
		v2 := binary.LittleEndian.Uint64(d[16:]) ^ binary.LittleEndian.Uint64(s0[16:]) ^ binary.LittleEndian.Uint64(s1[16:])
		v3 := binary.LittleEndian.Uint64(d[24:]) ^ binary.LittleEndian.Uint64(s0[24:]) ^ binary.LittleEndian.Uint64(s1[24:])
		binary.LittleEndian.PutUint64(d[0:], v0)
		binary.LittleEndian.PutUint64(d[8:], v1)
		binary.LittleEndian.PutUint64(d[16:], v2)
		binary.LittleEndian.PutUint64(d[24:], v3)
	}
	for ; i+wordSize <= n; i += wordSize {
		d := dst[i : i+wordSize : i+wordSize]
		v := binary.LittleEndian.Uint64(d) ^
			binary.LittleEndian.Uint64(a[i:]) ^
			binary.LittleEndian.Uint64(b[i:])
		binary.LittleEndian.PutUint64(d, v)
	}
	for ; i < n; i++ {
		dst[i] ^= a[i] ^ b[i]
	}
}

func xorInto3Generic(dst, a, b, c []byte) {
	n := len(dst)
	i := 0
	for ; i+4*wordSize <= n; i += 4 * wordSize {
		d := dst[i : i+4*wordSize : i+4*wordSize]
		s0 := a[i : i+4*wordSize : i+4*wordSize]
		s1 := b[i : i+4*wordSize : i+4*wordSize]
		s2 := c[i : i+4*wordSize : i+4*wordSize]
		v0 := binary.LittleEndian.Uint64(d[0:]) ^ binary.LittleEndian.Uint64(s0[0:]) ^ binary.LittleEndian.Uint64(s1[0:]) ^ binary.LittleEndian.Uint64(s2[0:])
		v1 := binary.LittleEndian.Uint64(d[8:]) ^ binary.LittleEndian.Uint64(s0[8:]) ^ binary.LittleEndian.Uint64(s1[8:]) ^ binary.LittleEndian.Uint64(s2[8:])
		v2 := binary.LittleEndian.Uint64(d[16:]) ^ binary.LittleEndian.Uint64(s0[16:]) ^ binary.LittleEndian.Uint64(s1[16:]) ^ binary.LittleEndian.Uint64(s2[16:])
		v3 := binary.LittleEndian.Uint64(d[24:]) ^ binary.LittleEndian.Uint64(s0[24:]) ^ binary.LittleEndian.Uint64(s1[24:]) ^ binary.LittleEndian.Uint64(s2[24:])
		binary.LittleEndian.PutUint64(d[0:], v0)
		binary.LittleEndian.PutUint64(d[8:], v1)
		binary.LittleEndian.PutUint64(d[16:], v2)
		binary.LittleEndian.PutUint64(d[24:], v3)
	}
	for ; i+wordSize <= n; i += wordSize {
		d := dst[i : i+wordSize : i+wordSize]
		v := binary.LittleEndian.Uint64(d) ^
			binary.LittleEndian.Uint64(a[i:]) ^
			binary.LittleEndian.Uint64(b[i:]) ^
			binary.LittleEndian.Uint64(c[i:])
		binary.LittleEndian.PutUint64(d, v)
	}
	for ; i < n; i++ {
		dst[i] ^= a[i] ^ b[i] ^ c[i]
	}
}

func xorInto4Generic(dst, a, b, c, e []byte) {
	n := len(dst)
	i := 0
	for ; i+4*wordSize <= n; i += 4 * wordSize {
		d := dst[i : i+4*wordSize : i+4*wordSize]
		s0 := a[i : i+4*wordSize : i+4*wordSize]
		s1 := b[i : i+4*wordSize : i+4*wordSize]
		s2 := c[i : i+4*wordSize : i+4*wordSize]
		s3 := e[i : i+4*wordSize : i+4*wordSize]
		v0 := binary.LittleEndian.Uint64(d[0:]) ^ binary.LittleEndian.Uint64(s0[0:]) ^ binary.LittleEndian.Uint64(s1[0:]) ^ binary.LittleEndian.Uint64(s2[0:]) ^ binary.LittleEndian.Uint64(s3[0:])
		v1 := binary.LittleEndian.Uint64(d[8:]) ^ binary.LittleEndian.Uint64(s0[8:]) ^ binary.LittleEndian.Uint64(s1[8:]) ^ binary.LittleEndian.Uint64(s2[8:]) ^ binary.LittleEndian.Uint64(s3[8:])
		v2 := binary.LittleEndian.Uint64(d[16:]) ^ binary.LittleEndian.Uint64(s0[16:]) ^ binary.LittleEndian.Uint64(s1[16:]) ^ binary.LittleEndian.Uint64(s2[16:]) ^ binary.LittleEndian.Uint64(s3[16:])
		v3 := binary.LittleEndian.Uint64(d[24:]) ^ binary.LittleEndian.Uint64(s0[24:]) ^ binary.LittleEndian.Uint64(s1[24:]) ^ binary.LittleEndian.Uint64(s2[24:]) ^ binary.LittleEndian.Uint64(s3[24:])
		binary.LittleEndian.PutUint64(d[0:], v0)
		binary.LittleEndian.PutUint64(d[8:], v1)
		binary.LittleEndian.PutUint64(d[16:], v2)
		binary.LittleEndian.PutUint64(d[24:], v3)
	}
	for ; i+wordSize <= n; i += wordSize {
		d := dst[i : i+wordSize : i+wordSize]
		v := binary.LittleEndian.Uint64(d) ^
			binary.LittleEndian.Uint64(a[i:]) ^
			binary.LittleEndian.Uint64(b[i:]) ^
			binary.LittleEndian.Uint64(c[i:]) ^
			binary.LittleEndian.Uint64(e[i:])
		binary.LittleEndian.PutUint64(d, v)
	}
	for ; i < n; i++ {
		dst[i] ^= a[i] ^ b[i] ^ c[i] ^ e[i]
	}
}

// Compute writes the XOR parity of blocks into p. All blocks and p must
// have the same length (validated before p is touched). At least one
// block is required.
func Compute(p []byte, blocks ...[]byte) {
	if len(blocks) == 0 {
		panic("parity: Compute with no blocks")
	}
	for _, b := range blocks {
		if len(b) != len(p) {
			panic("parity: Compute parity/block length mismatch")
		}
	}
	copy(p, blocks[0])
	XORInto(p, blocks[1:]...)
}

// Reconstruct recovers a single missing block given the parity block and
// the surviving data blocks, writing the result into dst. Lengths are
// validated before dst is touched.
func Reconstruct(dst, p []byte, survivors ...[]byte) {
	if len(dst) != len(p) {
		panic("parity: Reconstruct dst/parity length mismatch")
	}
	for _, b := range survivors {
		if len(b) != len(dst) {
			panic("parity: Reconstruct survivor length mismatch")
		}
	}
	copy(dst, p)
	XORInto(dst, survivors...)
}

// Update applies the RAID 5 read-modify-write parity delta in a single
// pass: p ^= oldData ^ newData. It is the two-source gather fold, so it
// rides the same dispatched kernel as XORInto.
func Update(p, oldData, newData []byte) {
	if len(p) != len(oldData) || len(p) != len(newData) {
		panic(fmt.Sprintf("parity: Update length mismatch %d/%d/%d", len(p), len(oldData), len(newData)))
	}
	xorInto2Kernel(p, oldData, newData)
}

// Check reports whether p equals the XOR of blocks. It folds word-wise
// without a scratch buffer, so a clean verify allocates nothing and
// stops at the first mismatching word.
func Check(p []byte, blocks ...[]byte) bool {
	if len(blocks) == 0 {
		panic("parity: Check with no blocks")
	}
	for _, b := range blocks {
		if len(b) != len(p) {
			panic("parity: Check parity/block length mismatch")
		}
	}
	n := len(p)
	i := 0
	for ; i+wordSize <= n; i += wordSize {
		v := binary.LittleEndian.Uint64(p[i:])
		for _, b := range blocks {
			v ^= binary.LittleEndian.Uint64(b[i:])
		}
		if v != 0 {
			return false
		}
	}
	for ; i < n; i++ {
		v := p[i]
		for _, b := range blocks {
			v ^= b[i]
		}
		if v != 0 {
			return false
		}
	}
	return true
}
