//go:build arm64 && !noasm

#include "textflag.h"

// NEON GF(2^8) kernels, split-nibble shuffle form via TBL. tab points at
// the 32-byte gfNib row for the coefficient (lo table then hi table);
// both stay resident in V4/V5 for the whole call:
//
//	c*x = lo[x & 0x0f] ^ hi[x >> 4]
//
// USHR on byte lanes shifts in zeros, so only the low nibble needs the
// 0x0f mask. Entry points require n > 0 and n % 16 == 0.

DATA nibMask<>+0(SB)/8, $0x0f0f0f0f0f0f0f0f
DATA nibMask<>+8(SB)/8, $0x0f0f0f0f0f0f0f0f
GLOBL nibMask<>(SB), RODATA|NOPTR, $16

// func gfMulXorNEON(dst, src *byte, n int, tab *[32]byte)
// dst ^= c*src
TEXT ·gfMulXorNEON(SB), NOSPLIT, $0-32
	MOVD dst+0(FP), R0
	MOVD src+8(FP), R1
	MOVD n+16(FP), R2
	MOVD tab+24(FP), R3
	VLD1 (R3), [V4.B16, V5.B16]
	MOVD $nibMask<>(SB), R4
	VLD1 (R4), [V6.B16]

loop16:
	VLD1.P 16(R1), [V0.B16]
	VUSHR $4, V0.B16, V1.B16
	VAND  V6.B16, V0.B16, V0.B16
	VTBL  V0.B16, [V4.B16], V2.B16
	VTBL  V1.B16, [V5.B16], V3.B16
	VEOR  V3.B16, V2.B16, V2.B16
	VLD1  (R0), [V7.B16]
	VEOR  V7.B16, V2.B16, V2.B16
	VST1.P [V2.B16], 16(R0)
	SUBS  $16, R2
	BNE   loop16
	RET

// func gfFoldPQNEON(p, q, src *byte, n int, tab *[32]byte)
// p ^= src; q ^= c*src — one pass over src for both parities.
TEXT ·gfFoldPQNEON(SB), NOSPLIT, $0-40
	MOVD p+0(FP), R0
	MOVD q+8(FP), R1
	MOVD src+16(FP), R2
	MOVD n+24(FP), R3
	MOVD tab+32(FP), R4
	VLD1 (R4), [V4.B16, V5.B16]
	MOVD $nibMask<>(SB), R5
	VLD1 (R5), [V6.B16]

loop16:
	VLD1.P 16(R2), [V0.B16]
	VLD1 (R0), [V7.B16]
	VEOR V7.B16, V0.B16, V7.B16
	VST1.P [V7.B16], 16(R0)
	VUSHR $4, V0.B16, V1.B16
	VAND  V6.B16, V0.B16, V0.B16
	VTBL  V0.B16, [V4.B16], V2.B16
	VTBL  V1.B16, [V5.B16], V3.B16
	VEOR  V3.B16, V2.B16, V2.B16
	VLD1  (R1), [V7.B16]
	VEOR  V7.B16, V2.B16, V2.B16
	VST1.P [V2.B16], 16(R1)
	SUBS  $16, R3
	BNE   loop16
	RET

// func gfMulUpdNEON(q, old, new *byte, n int, tab *[32]byte)
// q ^= c*(old^new) — the delta never touches memory.
TEXT ·gfMulUpdNEON(SB), NOSPLIT, $0-40
	MOVD q+0(FP), R0
	MOVD old+8(FP), R1
	MOVD new+16(FP), R2
	MOVD n+24(FP), R3
	MOVD tab+32(FP), R4
	VLD1 (R4), [V4.B16, V5.B16]
	MOVD $nibMask<>(SB), R5
	VLD1 (R5), [V6.B16]

loop16:
	VLD1.P 16(R1), [V0.B16]
	VLD1.P 16(R2), [V1.B16]
	VEOR  V1.B16, V0.B16, V0.B16
	VUSHR $4, V0.B16, V1.B16
	VAND  V6.B16, V0.B16, V0.B16
	VTBL  V0.B16, [V4.B16], V2.B16
	VTBL  V1.B16, [V5.B16], V3.B16
	VEOR  V3.B16, V2.B16, V2.B16
	VLD1  (R0), [V7.B16]
	VEOR  V7.B16, V2.B16, V2.B16
	VST1.P [V2.B16], 16(R0)
	SUBS  $16, R3
	BNE   loop16
	RET
