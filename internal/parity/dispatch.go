package parity

// Kernel dispatch. The package-level function variables below default to
// the portable word-wise kernels; on amd64 with AVX2 (or arm64, where
// NEON is architecturally guaranteed) an arch init() swaps in assembly
// implementations and records the backend name. The `noasm` build tag
// compiles the assembly and its init out entirely, so the variables keep
// their generic values on every platform.
//
// Contract for every kernel variable: lengths are already validated by
// the exported entry point (all operands share dst's length), operands
// do not alias each other, and the kernel must be byte-exact with its
// generic counterpart — the generic kernels double as the differential
// fuzz oracle (see kernel_test.go / fuzz targets).

// kernelName identifies the active backend: "avx2", "neon", or "generic".
var kernelName = "generic"

// Kernel reports which parity kernel backend was selected at init:
// "avx2", "neon", or "generic". Benchmarks and scripts/bench.sh record
// it next to throughput numbers so results are comparable across hosts.
func Kernel() string { return kernelName }

var (
	// xorKernel: dst ^= src.
	xorKernel = xorGeneric
	// xorInto2Kernel: dst ^= a ^ b (one pass over dst).
	xorInto2Kernel = xorInto2Generic
	// xorInto3Kernel: dst ^= a ^ b ^ c.
	xorInto3Kernel = xorInto3Generic
	// xorInto4Kernel: dst ^= a ^ b ^ c ^ e.
	xorInto4Kernel = xorInto4Generic
	// gfMulXorKernel: dst ^= c*src over GF(2^8); c is never 0 or 1
	// (mulInto strength-reduces those to a no-op / plain XOR first).
	gfMulXorKernel = gfMulXorGeneric
	// gfFoldPQKernel: p ^= src, q ^= c*src in one pass over src.
	gfFoldPQKernel = foldPQGeneric
	// gfMulUpdKernel: q ^= c*(old^new) without materializing the delta.
	gfMulUpdKernel = mulUpdateGeneric
)
