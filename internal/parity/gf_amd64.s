//go:build amd64 && !noasm

#include "textflag.h"

// AVX2 GF(2^8) kernels, split-nibble shuffle form. tab points at the
// 32-byte gfNib row for the coefficient: bytes 0-15 are lo[i] = c*i,
// bytes 16-31 are hi[i] = c*(i<<4). VBROADCASTI128 replicates each
// 16-byte table into both ymm lanes so VPSHUFB (which shuffles within
// 128-bit lanes) looks up 32 products per instruction:
//
//	c*x = lo[x & 0x0f] ^ hi[x >> 4]
//
// VPSRLW shifts 16-bit lanes, dragging neighbor bits into the high
// nibble position; the 0x0f mask strips them. Entry points require
// n > 0 and n % 32 == 0; wrappers handle tails generically.

DATA nibMask<>+0(SB)/8, $0x0f0f0f0f0f0f0f0f
DATA nibMask<>+8(SB)/8, $0x0f0f0f0f0f0f0f0f
DATA nibMask<>+16(SB)/8, $0x0f0f0f0f0f0f0f0f
DATA nibMask<>+24(SB)/8, $0x0f0f0f0f0f0f0f0f
GLOBL nibMask<>(SB), RODATA|NOPTR, $32

// func gfMulXorAVX2(dst, src *byte, n int, tab *[32]byte)
// dst ^= c*src
TEXT ·gfMulXorAVX2(SB), NOSPLIT, $0-32
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ n+16(FP), CX
	MOVQ tab+24(FP), DX
	VBROADCASTI128 (DX), Y4
	VBROADCASTI128 16(DX), Y5
	VMOVDQU nibMask<>(SB), Y6
	XORQ AX, AX

loop32:
	VMOVDQU (SI)(AX*1), Y0
	VPSRLW  $4, Y0, Y1
	VPAND   Y6, Y1, Y1
	VPAND   Y6, Y0, Y0
	VPSHUFB Y0, Y4, Y2
	VPSHUFB Y1, Y5, Y3
	VPXOR   Y3, Y2, Y2
	VPXOR   (DI)(AX*1), Y2, Y2
	VMOVDQU Y2, (DI)(AX*1)
	ADDQ    $32, AX
	SUBQ    $32, CX
	JNZ     loop32
	VZEROUPPER
	RET

// func gfFoldPQAVX2(p, q, src *byte, n int, tab *[32]byte)
// p ^= src; q ^= c*src — one pass over src for both parities.
TEXT ·gfFoldPQAVX2(SB), NOSPLIT, $0-40
	MOVQ p+0(FP), DI
	MOVQ q+8(FP), BX
	MOVQ src+16(FP), SI
	MOVQ n+24(FP), CX
	MOVQ tab+32(FP), DX
	VBROADCASTI128 (DX), Y4
	VBROADCASTI128 16(DX), Y5
	VMOVDQU nibMask<>(SB), Y6
	XORQ AX, AX

loop32:
	VMOVDQU (SI)(AX*1), Y0
	VPXOR   (DI)(AX*1), Y0, Y7
	VMOVDQU Y7, (DI)(AX*1)
	VPSRLW  $4, Y0, Y1
	VPAND   Y6, Y1, Y1
	VPAND   Y6, Y0, Y0
	VPSHUFB Y0, Y4, Y2
	VPSHUFB Y1, Y5, Y3
	VPXOR   Y3, Y2, Y2
	VPXOR   (BX)(AX*1), Y2, Y2
	VMOVDQU Y2, (BX)(AX*1)
	ADDQ    $32, AX
	SUBQ    $32, CX
	JNZ     loop32
	VZEROUPPER
	RET

// func gfMulUpdAVX2(q, old, new *byte, n int, tab *[32]byte)
// q ^= c*(old^new) — the delta never touches memory.
TEXT ·gfMulUpdAVX2(SB), NOSPLIT, $0-40
	MOVQ q+0(FP), DI
	MOVQ old+8(FP), SI
	MOVQ new+16(FP), R8
	MOVQ n+24(FP), CX
	MOVQ tab+32(FP), DX
	VBROADCASTI128 (DX), Y4
	VBROADCASTI128 16(DX), Y5
	VMOVDQU nibMask<>(SB), Y6
	XORQ AX, AX

loop32:
	VMOVDQU (SI)(AX*1), Y0
	VPXOR   (R8)(AX*1), Y0, Y0
	VPSRLW  $4, Y0, Y1
	VPAND   Y6, Y1, Y1
	VPAND   Y6, Y0, Y0
	VPSHUFB Y0, Y4, Y2
	VPSHUFB Y1, Y5, Y3
	VPXOR   Y3, Y2, Y2
	VPXOR   (DI)(AX*1), Y2, Y2
	VMOVDQU Y2, (DI)(AX*1)
	ADDQ    $32, AX
	SUBQ    $32, CX
	JNZ     loop32
	VZEROUPPER
	RET
