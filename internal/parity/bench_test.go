package parity

import (
	"fmt"
	"testing"
)

// BenchmarkXORKernel measures the XOR fold in bytes/s (the ns/op column
// divided into B/op gives GB/s) across the shapes the store uses:
// naive is the seed byte loop, word the uint64-lane kernel, and
// gather4 the one-pass multi-source fold over four 'data units'
// (SetBytes counts all source bytes, matching the memory actually
// folded per op).
func BenchmarkXORKernel(b *testing.B) {
	for _, size := range []int{512, 8 << 10, 64 << 10} {
		name := fmt.Sprintf("%dB", size)
		if size >= 1024 {
			name = fmt.Sprintf("%dK", size>>10)
		}
		dst := make([]byte, size)
		srcs := make([][]byte, 4)
		for i := range srcs {
			srcs[i] = make([]byte, size)
			fill(srcs[i], uint64(i+1))
		}

		b.Run("naive/"+name, func(b *testing.B) {
			b.SetBytes(int64(size))
			for i := 0; i < b.N; i++ {
				xorNaive(dst, srcs[0])
			}
		})
		b.Run("word/"+name, func(b *testing.B) {
			b.SetBytes(int64(size))
			for i := 0; i < b.N; i++ {
				XOR(dst, srcs[0])
			}
		})
		b.Run("gather4/"+name, func(b *testing.B) {
			b.SetBytes(int64(4 * size))
			for i := 0; i < b.N; i++ {
				XORInto(dst, srcs...)
			}
		})
		b.Run("sequential4/"+name, func(b *testing.B) {
			b.SetBytes(int64(4 * size))
			for i := 0; i < b.N; i++ {
				for _, s := range srcs {
					XOR(dst, s)
				}
			}
		})
	}
}

// BenchmarkGFKernel measures the GF(2^8) bulk kernels: the single
// mul-table row fold and the fused P+Q pass.
func BenchmarkGFKernel(b *testing.B) {
	size := 8 << 10
	src := make([]byte, size)
	fill(src, 1)
	p := make([]byte, size)
	q := make([]byte, size)

	b.Run("mulInto/8K", func(b *testing.B) {
		b.SetBytes(int64(size))
		for i := 0; i < b.N; i++ {
			mulInto(q, src, 29)
		}
	})
	b.Run("foldPQ/8K", func(b *testing.B) {
		b.SetBytes(int64(size))
		for i := 0; i < b.N; i++ {
			foldPQ(p, q, src, 29)
		}
	})
	b.Run("updateQ/8K", func(b *testing.B) {
		b.SetBytes(int64(size))
		old := make([]byte, size)
		fill(old, 2)
		for i := 0; i < b.N; i++ {
			UpdateQ(q, old, src, 3)
		}
	})
}
