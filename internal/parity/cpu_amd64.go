//go:build amd64 && !noasm

package parity

// AVX2 backend selection. We detect support ourselves (no x/sys dep):
// AVX2 needs CPUID.7.0:EBX bit 5, plus OSXSAVE/AVX (CPUID.1:ECX bits
// 27/26) and OS-enabled YMM state (XCR0 bits 1-2 via XGETBV). The asm
// kernels process 32-byte lanes over the n&^31 prefix; the wrappers
// finish the tail with the generic kernels, so any length and any
// alignment is legal (all loads/stores are unaligned forms).

//go:noescape
func cpuidex(leaf, subleaf uint32) (eax, ebx, ecx, edx uint32)

//go:noescape
func xgetbv0() (eax, edx uint32)

//go:noescape
func xorAVX2(dst, src *byte, n int)

//go:noescape
func xorInto2AVX2(dst, a, b *byte, n int)

//go:noescape
func xorInto3AVX2(dst, a, b, c *byte, n int)

//go:noescape
func xorInto4AVX2(dst, a, b, c, e *byte, n int)

//go:noescape
func gfMulXorAVX2(dst, src *byte, n int, tab *[32]byte)

//go:noescape
func gfFoldPQAVX2(p, q, src *byte, n int, tab *[32]byte)

//go:noescape
func gfMulUpdAVX2(q, old, new *byte, n int, tab *[32]byte)

func hasAVX2() bool {
	maxLeaf, _, _, _ := cpuidex(0, 0)
	if maxLeaf < 7 {
		return false
	}
	_, _, ecx1, _ := cpuidex(1, 0)
	const osxsaveAVX = 1<<27 | 1<<28 // OSXSAVE | AVX
	if ecx1&osxsaveAVX != osxsaveAVX {
		return false
	}
	xlo, _ := xgetbv0()
	if xlo&0x6 != 0x6 { // XMM and YMM state enabled by the OS
		return false
	}
	_, ebx7, _, _ := cpuidex(7, 0)
	return ebx7&(1<<5) != 0 // AVX2
}

func init() {
	if !hasAVX2() {
		return
	}
	buildNibTables()
	xorKernel = xorAVX2Wrap
	xorInto2Kernel = xorInto2AVX2Wrap
	xorInto3Kernel = xorInto3AVX2Wrap
	xorInto4Kernel = xorInto4AVX2Wrap
	gfMulXorKernel = gfMulXorAVX2Wrap
	gfFoldPQKernel = gfFoldPQAVX2Wrap
	gfMulUpdKernel = gfMulUpdAVX2Wrap
	kernelName = "avx2"
}

func xorAVX2Wrap(dst, src []byte) {
	n := len(dst) &^ 31
	if n != 0 {
		xorAVX2(&dst[0], &src[0], n)
	}
	if n != len(dst) {
		xorGeneric(dst[n:], src[n:])
	}
}

func xorInto2AVX2Wrap(dst, a, b []byte) {
	n := len(dst) &^ 31
	if n != 0 {
		xorInto2AVX2(&dst[0], &a[0], &b[0], n)
	}
	if n != len(dst) {
		xorInto2Generic(dst[n:], a[n:], b[n:])
	}
}

func xorInto3AVX2Wrap(dst, a, b, c []byte) {
	n := len(dst) &^ 31
	if n != 0 {
		xorInto3AVX2(&dst[0], &a[0], &b[0], &c[0], n)
	}
	if n != len(dst) {
		xorInto3Generic(dst[n:], a[n:], b[n:], c[n:])
	}
}

func xorInto4AVX2Wrap(dst, a, b, c, e []byte) {
	n := len(dst) &^ 31
	if n != 0 {
		xorInto4AVX2(&dst[0], &a[0], &b[0], &c[0], &e[0], n)
	}
	if n != len(dst) {
		xorInto4Generic(dst[n:], a[n:], b[n:], c[n:], e[n:])
	}
}

func gfMulXorAVX2Wrap(dst, src []byte, c byte) {
	n := len(src) &^ 31
	if n != 0 {
		gfMulXorAVX2(&dst[0], &src[0], n, &gfNib[c])
	}
	if n != len(src) {
		gfMulXorGeneric(dst[n:], src[n:], c)
	}
}

func gfFoldPQAVX2Wrap(p, q, src []byte, c byte) {
	n := len(src) &^ 31
	if n != 0 {
		gfFoldPQAVX2(&p[0], &q[0], &src[0], n, &gfNib[c])
	}
	if n != len(src) {
		foldPQGeneric(p[n:], q[n:], src[n:], c)
	}
}

func gfMulUpdAVX2Wrap(q, oldData, newData []byte, c byte) {
	n := len(q) &^ 31
	if n != 0 {
		gfMulUpdAVX2(&q[0], &oldData[0], &newData[0], n, &gfNib[c])
	}
	if n != len(q) {
		mulUpdateGeneric(q[n:], oldData[n:], newData[n:], c)
	}
}
