package parity

import (
	"bytes"
	"testing"
	"testing/quick"
)

// xorNaive is the reference byte-at-a-time fold the word-wise kernels
// are checked (and benchmarked) against.
func xorNaive(dst []byte, srcs ...[]byte) {
	for _, s := range srcs {
		for i := range dst {
			dst[i] ^= s[i]
		}
	}
}

// fill writes a deterministic pseudo-random pattern.
func fill(b []byte, seed uint64) {
	s := seed*6364136223846793005 + 1442695040888963407
	for i := range b {
		s = s*6364136223846793005 + 1442695040888963407
		b[i] = byte(s >> 56)
	}
}

func TestXORIntoMatchesNaive(t *testing.T) {
	for _, n := range []int{0, 1, 7, 8, 9, 15, 16, 63, 512, 513, 8191, 8192} {
		for k := 0; k <= 5; k++ {
			srcs := make([][]byte, k)
			for i := range srcs {
				srcs[i] = make([]byte, n)
				fill(srcs[i], uint64(n*10+i))
			}
			want := make([]byte, n)
			got := make([]byte, n)
			fill(want, uint64(n))
			copy(got, want)
			xorNaive(want, srcs...)
			XORInto(got, srcs...)
			if !bytes.Equal(got, want) {
				t.Fatalf("XORInto(n=%d, k=%d) diverges from naive fold", n, k)
			}
		}
	}
}

func TestXORIntoLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("length mismatch did not panic")
		}
	}()
	XORInto(make([]byte, 8), make([]byte, 8), make([]byte, 7))
}

func TestXORIntoMismatchLeavesDstUntouched(t *testing.T) {
	// Validate-first: a bad source in any position must not partially
	// fold the earlier sources into dst.
	dst := []byte{1, 2, 3, 4}
	orig := append([]byte(nil), dst...)
	func() {
		defer func() { recover() }()
		XORInto(dst, []byte{9, 9, 9, 9}, []byte{1, 2, 3})
	}()
	if !bytes.Equal(dst, orig) {
		t.Fatalf("dst mutated to %v before panic", dst)
	}
}

func TestComputeMismatchLeavesParityUntouched(t *testing.T) {
	// The seed code copied blocks[0] into p before validating, partially
	// mutating the destination of a doomed call.
	p := []byte{7, 7, 7, 7}
	orig := append([]byte(nil), p...)
	func() {
		defer func() { recover() }()
		Compute(p, []byte{1, 2}, []byte{3, 4, 5, 6})
	}()
	if !bytes.Equal(p, orig) {
		t.Fatalf("parity mutated to %v before panic", p)
	}
}

func TestReconstructMismatchLeavesDstUntouched(t *testing.T) {
	dst := []byte{7, 7, 7, 7}
	orig := append([]byte(nil), dst...)
	func() {
		defer func() { recover() }()
		Reconstruct(dst, []byte{1, 2, 3, 4}, []byte{1, 2, 3})
	}()
	if !bytes.Equal(dst, orig) {
		t.Fatalf("dst mutated to %v before panic", dst)
	}
}

func TestComputePQMismatchLeavesParitiesUntouched(t *testing.T) {
	p := []byte{7, 7, 7, 7}
	q := []byte{9, 9, 9, 9}
	origP := append([]byte(nil), p...)
	origQ := append([]byte(nil), q...)
	func() {
		defer func() { recover() }()
		ComputePQ(p, q, []byte{1, 2, 3, 4}, []byte{1, 2, 3})
	}()
	if !bytes.Equal(p, origP) || !bytes.Equal(q, origQ) {
		t.Fatalf("parities mutated to %v/%v before panic", p, q)
	}
}

func TestUpdateMatchesTwoXORs(t *testing.T) {
	prop := func(p, old, new []byte) bool {
		n := 41 // odd length exercises the byte tail
		pad := func(x []byte) []byte {
			out := make([]byte, n)
			copy(out, x)
			return out
		}
		p, old, new = pad(p), pad(old), pad(new)
		want := append([]byte(nil), p...)
		XOR(want, old)
		XOR(want, new)
		Update(p, old, new)
		return bytes.Equal(p, want)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGFMulTableMatchesLogExp(t *testing.T) {
	for a := 0; a < 256; a++ {
		for b := 0; b < 256; b++ {
			var want byte
			if a != 0 && b != 0 {
				want = gfExp[int(gfLog[a])+int(gfLog[b])]
			}
			if got := gfMul(byte(a), byte(b)); got != want {
				t.Fatalf("gfMul(%d, %d) = %d, want %d", a, b, got, want)
			}
		}
	}
}

func TestFoldPQMatchesSeparateCalls(t *testing.T) {
	n := 100
	src := make([]byte, n)
	fill(src, 3)
	for _, c := range []byte{0, 1, 2, 29, 255} {
		p1, q1 := make([]byte, n), make([]byte, n)
		p2, q2 := make([]byte, n), make([]byte, n)
		fill(p1, 4)
		fill(q1, 5)
		copy(p2, p1)
		copy(q2, q1)
		XOR(p1, src)
		mulInto(q1, src, c)
		foldPQ(p2, q2, src, c)
		if !bytes.Equal(p1, p2) || !bytes.Equal(q1, q2) {
			t.Fatalf("foldPQ(c=%d) diverges from XOR+mulInto", c)
		}
	}
}

func TestUpdateQMatchesDeltaForm(t *testing.T) {
	n := 77
	q1 := make([]byte, n)
	old := make([]byte, n)
	new := make([]byte, n)
	fill(q1, 1)
	fill(old, 2)
	fill(new, 3)
	q2 := append([]byte(nil), q1...)
	// Reference: materialize the delta, then mulInto.
	delta := append([]byte(nil), old...)
	XOR(delta, new)
	mulInto(q1, delta, gfPow(5))
	UpdateQ(q2, old, new, 5)
	if !bytes.Equal(q1, q2) {
		t.Fatal("UpdateQ diverges from materialized-delta form")
	}
}

// TestHotKernelsAllocFree asserts the steady-state data path allocates
// nothing: Check, CheckPQ, UpdateQ, and ReconstructTwoPQ after the
// buffer pool has warmed.
func TestHotKernelsAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector adds allocations; assertion only holds in normal builds")
	}
	n := 8 << 10
	blocks := make([][]byte, 4)
	for i := range blocks {
		blocks[i] = make([]byte, n)
		fill(blocks[i], uint64(i))
	}
	p := make([]byte, n)
	q := make([]byte, n)
	ComputePQ(p, q, blocks...)

	if a := testing.AllocsPerRun(20, func() {
		if !Check(p, blocks[0], blocks[1], blocks[2], blocks[3]) {
			t.Fatal("Check rejected consistent parity")
		}
	}); a > 0 {
		t.Errorf("Check allocates %v per op", a)
	}

	if a := testing.AllocsPerRun(20, func() {
		if !CheckPQ(p, q, blocks[0], blocks[1], blocks[2], blocks[3]) {
			t.Fatal("CheckPQ rejected consistent parity")
		}
	}); a > 0 {
		t.Errorf("CheckPQ allocates %v per op", a)
	}

	qc := append([]byte(nil), q...)
	if a := testing.AllocsPerRun(20, func() {
		UpdateQ(qc, blocks[1], blocks[2], 1)
	}); a > 0 {
		t.Errorf("UpdateQ allocates %v per op", a)
	}

	dx := make([]byte, n)
	dy := make([]byte, n)
	surv := map[int][]byte{2: blocks[2], 3: blocks[3]}
	if a := testing.AllocsPerRun(20, func() {
		ReconstructTwoPQ(dx, dy, 0, 1, p, q, surv)
	}); a > 0 {
		t.Errorf("ReconstructTwoPQ allocates %v per op", a)
	}
	if !bytes.Equal(dx, blocks[0]) || !bytes.Equal(dy, blocks[1]) {
		t.Error("ReconstructTwoPQ wrong answer")
	}
}

func FuzzXORInto(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9}, []byte{9, 8, 7, 6, 5, 4, 3, 2, 1}, uint8(3), uint8(0))
	f.Add([]byte{}, []byte{}, uint8(0), uint8(0))
	f.Add(bytes.Repeat([]byte{0xaa}, 100), bytes.Repeat([]byte{0x55}, 100), uint8(5), uint8(17))
	f.Add(bytes.Repeat([]byte{0x1d}, 65), bytes.Repeat([]byte{0x80}, 65), uint8(4), uint8(31))
	f.Fuzz(func(t *testing.T, dst, src []byte, k uint8, off uint8) {
		if len(src) > len(dst) {
			src = src[:len(dst)]
		} else {
			dst = dst[:len(src)]
		}
		// Place every operand at a fuzz-chosen offset inside its own
		// backing array: each slice is a distinct allocation (no operand
		// aliasing), and the dispatched kernels see unaligned bases.
		place := func(b []byte, o int) []byte {
			back := make([]byte, len(b)+64)
			copy(back[o:], b)
			return back[o : o+len(b) : o+len(b)]
		}
		// Derive k (bounded) sources from src by rotation so they differ.
		srcs := make([][]byte, int(k%6))
		for i := range srcs {
			s := make([]byte, len(src))
			for j := range src {
				s[j] = src[(j+i)%max(len(src), 1)] ^ byte(i)
			}
			srcs[i] = place(s, (int(off)+i*7)%32)
		}
		want := append([]byte(nil), dst...)
		got := place(dst, int(off)%32)
		xorNaive(want, srcs...)
		XORInto(got, srcs...)
		if !bytes.Equal(got, want) {
			t.Fatalf("XORInto(len=%d, k=%d, off=%d) = %x, naive = %x", len(dst), len(srcs), int(off)%32, got, want)
		}
	})
}
