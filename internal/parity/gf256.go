package parity

import (
	"bytes"
	"fmt"

	"afraid/internal/bufpool"
)

// GF(2^8) arithmetic with the standard RAID 6 / Reed-Solomon polynomial
// x^8+x^4+x^3+x^2+1 (0x11d), under which 2 is a primitive element, using
// log/antilog tables generated at init time. This supports the P+Q
// (RAID 6) codec for the paper's §5 extension: P = sum(d_i),
// Q = sum(g^i * d_i) with generator g = 2.
//
// The bulk kernels never touch the log/antilog tables: each coefficient
// c selects one 256-byte row of the full multiplication table, and the
// inner loops are a single branch-free lookup-and-xor per byte. The
// fused kernels (foldPQ, mulUpdate) make one pass over the source for
// both parities, halving the source traffic of the naive two-call shape.

var (
	gfExp [512]byte // g^i for i in [0,510), doubled to avoid mod 255
	gfLog [256]byte // log_g(x) for x != 0

	// gfMulTab[c][x] = c*x over GF(2^8). 64 KiB, built once at init;
	// row c is the kernel for "multiply a block by c".
	gfMulTab [256][256]byte
)

func init() {
	x := byte(1)
	for i := 0; i < 255; i++ {
		gfExp[i] = x
		gfLog[x] = byte(i)
		// multiply x by the generator 2 in GF(2^8)
		carry := x&0x80 != 0
		x <<= 1
		if carry {
			x ^= 0x1d
		}
	}
	for i := 255; i < 510; i++ {
		gfExp[i] = gfExp[i-255]
	}
	for c := 1; c < 256; c++ {
		lc := int(gfLog[c])
		row := &gfMulTab[c]
		for s := 1; s < 256; s++ {
			row[s] = gfExp[lc+int(gfLog[s])]
		}
	}
}

// gfMul multiplies two field elements.
func gfMul(a, b byte) byte { return gfMulTab[a][b] }

// gfDiv divides a by b (b != 0).
func gfDiv(a, b byte) byte {
	if b == 0 {
		panic("parity: GF division by zero")
	}
	if a == 0 {
		return 0
	}
	return gfExp[int(gfLog[a])+255-int(gfLog[b])]
}

// gfPow returns g^n for the generator g=2.
func gfPow(n int) byte {
	n %= 255
	if n < 0 {
		n += 255
	}
	return gfExp[n]
}

// gfInv returns the multiplicative inverse.
func gfInv(a byte) byte {
	if a == 0 {
		panic("parity: GF inverse of zero")
	}
	return gfExp[255-int(gfLog[a])]
}

// mulInto computes dst ^= c * src over GF(2^8) bytes.
func mulInto(dst, src []byte, c byte) {
	if len(dst) != len(src) {
		panic("parity: mulInto length mismatch")
	}
	if c == 0 {
		return
	}
	if c == 1 {
		xorKernel(dst, src)
		return
	}
	gfMulXorKernel(dst, src, c)
}

func gfMulXorGeneric(dst, src []byte, c byte) {
	row := &gfMulTab[c]
	dst = dst[:len(src)] // hoist the bounds check out of the loop
	for i, s := range src {
		dst[i] ^= row[s]
	}
}

// foldPQ accumulates one data block into both parities in a single pass
// over src: p ^= src, q ^= c*src. The block is read once for both.
func foldPQ(p, q, src []byte, c byte) {
	gfFoldPQKernel(p, q, src, c)
}

func foldPQGeneric(p, q, src []byte, c byte) {
	row := &gfMulTab[c]
	p = p[:len(src)]
	q = q[:len(src)]
	for i, s := range src {
		p[i] ^= s
		q[i] ^= row[s]
	}
}

// ComputePQ writes the RAID 6 P and Q parity blocks for the data blocks.
// Block i contributes g^i to Q. All blocks, p, and q must share a
// length, validated before either output is touched.
func ComputePQ(p, q []byte, blocks ...[]byte) {
	if len(blocks) == 0 {
		panic("parity: ComputePQ with no blocks")
	}
	if len(blocks) > 255 {
		panic("parity: ComputePQ supports at most 255 data blocks")
	}
	if len(p) != len(q) {
		panic("parity: ComputePQ p/q length mismatch")
	}
	for _, b := range blocks {
		if len(b) != len(p) {
			panic("parity: ComputePQ parity/block length mismatch")
		}
	}
	// Block 0 contributes g^0 = 1 to both parities: seed by copy instead
	// of zeroing and folding.
	copy(p, blocks[0])
	copy(q, blocks[0])
	for i := 1; i < len(blocks); i++ {
		foldPQ(p, q, blocks[i], gfPow(i))
	}
}

// ReconstructOnePQ recovers data block idx from P (or Q if P is lost)
// plus survivors. If useQ is false it uses P exactly like RAID 5; if
// true it uses Q: d_idx = (Q - sum_{j!=idx} g^j d_j) / g^idx.
func ReconstructOnePQ(dst []byte, idx int, useQ bool, pq []byte, survivors map[int][]byte) {
	if len(dst) != len(pq) {
		panic("parity: ReconstructOnePQ dst/parity length mismatch")
	}
	for _, b := range survivors {
		if len(b) != len(dst) {
			panic("parity: ReconstructOnePQ survivor length mismatch")
		}
	}
	if !useQ {
		copy(dst, pq)
		for _, b := range survivors {
			XOR(dst, b)
		}
		return
	}
	copy(dst, pq)
	for j, b := range survivors {
		mulInto(dst, b, gfPow(j))
	}
	row := &gfMulTab[gfInv(gfPow(idx))]
	for i, v := range dst {
		dst[i] = row[v]
	}
}

// ReconstructTwoPQ recovers two missing data blocks x and y (x != y)
// given both P and Q and the surviving data blocks, writing results into
// dx and dy. Standard RAID 6 double-erasure decode:
//
//	Pxy = P ^ sum(survivors)            (= dx ^ dy)
//	Qxy = Q ^ sum(g^j survivors_j)      (= g^x dx ^ g^y dy)
//	dx  = (g^(y-x) Pxy ^ g^(-x) Qxy) / (g^(y-x) ^ 1)
//	dy  = Pxy ^ dx
func ReconstructTwoPQ(dx, dy []byte, x, y int, p, q []byte, survivors map[int][]byte) {
	if x == y {
		panic(fmt.Sprintf("parity: ReconstructTwoPQ with x == y == %d", x))
	}
	n := len(p)
	if len(q) != n || len(dx) != n || len(dy) != n {
		panic("parity: ReconstructTwoPQ length mismatch")
	}
	for _, b := range survivors {
		if len(b) != n {
			panic("parity: ReconstructTwoPQ survivor length mismatch")
		}
	}
	pxy := bufpool.Get(n)
	qxy := bufpool.Get(n)
	defer bufpool.Put(pxy)
	defer bufpool.Put(qxy)
	copy(pxy, p)
	copy(qxy, q)
	for j, b := range survivors {
		foldPQ(pxy, qxy, b, gfPow(j))
	}
	// a = g^(y-x), b = g^(-x)
	a := gfPow(y - x)
	binv := gfPow(-x)
	denom := a ^ 1
	rowA := &gfMulTab[a]
	rowB := &gfMulTab[binv]
	rowD := &gfMulTab[gfInv(denom)]
	dx = dx[:n]
	dy = dy[:n]
	for i := 0; i < n; i++ {
		v := rowD[rowA[pxy[i]]^rowB[qxy[i]]]
		dx[i] = v
		dy[i] = pxy[i] ^ v
	}
}

// mulUpdate computes q ^= c * (oldData ^ newData) in one pass, without
// materializing the delta — the fused RAID 6 read-modify-write kernel.
func mulUpdate(q, oldData, newData []byte, c byte) {
	if len(q) != len(oldData) || len(q) != len(newData) {
		panic("parity: mulUpdate length mismatch")
	}
	gfMulUpdKernel(q, oldData, newData, c)
}

func mulUpdateGeneric(q, oldData, newData []byte, c byte) {
	row := &gfMulTab[c]
	oldData = oldData[:len(q)]
	newData = newData[:len(q)]
	for i := range q {
		q[i] ^= row[oldData[i]^newData[i]]
	}
}

// UpdateQ applies the read-modify-write delta to a Q parity block for
// data block idx: Q ^= g^idx * (old ^ new). The RAID 6 analogue of
// Update. Allocation-free: the delta is folded in flight.
func UpdateQ(q, oldData, newData []byte, idx int) {
	mulUpdate(q, oldData, newData, gfPow(idx))
}

// CheckPQ reports whether p and q are consistent with blocks. The P
// check folds in place (see Check); the Q accumulator comes from the
// buffer pool, so steady-state verification allocates nothing.
func CheckPQ(p, q []byte, blocks ...[]byte) bool {
	if len(blocks) == 0 {
		panic("parity: CheckPQ with no blocks")
	}
	if len(p) != len(q) {
		panic("parity: CheckPQ p/q length mismatch")
	}
	for _, b := range blocks {
		if len(b) != len(p) {
			panic("parity: CheckPQ parity/block length mismatch")
		}
	}
	if !Check(p, blocks...) {
		return false
	}
	tq := bufpool.Get(len(q))
	defer bufpool.Put(tq)
	copy(tq, blocks[0])
	for i := 1; i < len(blocks); i++ {
		mulInto(tq, blocks[i], gfPow(i))
	}
	return bytes.Equal(tq, q)
}
