package parity

import "fmt"

// GF(2^8) arithmetic with the standard RAID 6 / Reed-Solomon polynomial
// x^8+x^4+x^3+x^2+1 (0x11d), under which 2 is a primitive element, using
// log/antilog tables generated at init time. This supports the P+Q
// (RAID 6) codec for the paper's §5 extension: P = sum(d_i),
// Q = sum(g^i * d_i) with generator g = 2.

var (
	gfExp [512]byte // g^i for i in [0,510), doubled to avoid mod 255
	gfLog [256]byte // log_g(x) for x != 0
)

func init() {
	x := byte(1)
	for i := 0; i < 255; i++ {
		gfExp[i] = x
		gfLog[x] = byte(i)
		// multiply x by the generator 2 in GF(2^8)
		carry := x&0x80 != 0
		x <<= 1
		if carry {
			x ^= 0x1d
		}
	}
	for i := 255; i < 510; i++ {
		gfExp[i] = gfExp[i-255]
	}
}

// gfMul multiplies two field elements.
func gfMul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return gfExp[int(gfLog[a])+int(gfLog[b])]
}

// gfDiv divides a by b (b != 0).
func gfDiv(a, b byte) byte {
	if b == 0 {
		panic("parity: GF division by zero")
	}
	if a == 0 {
		return 0
	}
	return gfExp[int(gfLog[a])+255-int(gfLog[b])]
}

// gfPow returns g^n for the generator g=2.
func gfPow(n int) byte {
	n %= 255
	if n < 0 {
		n += 255
	}
	return gfExp[n]
}

// gfInv returns the multiplicative inverse.
func gfInv(a byte) byte {
	if a == 0 {
		panic("parity: GF inverse of zero")
	}
	return gfExp[255-int(gfLog[a])]
}

// mulInto computes dst ^= c * src over GF(2^8) bytes.
func mulInto(dst, src []byte, c byte) {
	if len(dst) != len(src) {
		panic("parity: mulInto length mismatch")
	}
	if c == 0 {
		return
	}
	if c == 1 {
		XOR(dst, src)
		return
	}
	lc := int(gfLog[c])
	for i, s := range src {
		if s != 0 {
			dst[i] ^= gfExp[lc+int(gfLog[s])]
		}
	}
}

// ComputePQ writes the RAID 6 P and Q parity blocks for the data blocks.
// Block i contributes g^i to Q. All blocks, p, and q must share a length.
func ComputePQ(p, q []byte, blocks ...[]byte) {
	if len(blocks) == 0 {
		panic("parity: ComputePQ with no blocks")
	}
	if len(blocks) > 255 {
		panic("parity: ComputePQ supports at most 255 data blocks")
	}
	for i := range p {
		p[i] = 0
	}
	for i := range q {
		q[i] = 0
	}
	for i, b := range blocks {
		XOR(p, b)
		mulInto(q, b, gfPow(i))
	}
}

// ReconstructOnePQ recovers data block idx from P (or Q if P is lost)
// plus survivors. If useQ is false it uses P exactly like RAID 5; if
// true it uses Q: d_idx = (Q - sum_{j!=idx} g^j d_j) / g^idx.
func ReconstructOnePQ(dst []byte, idx int, useQ bool, pq []byte, survivors map[int][]byte) {
	for i := range dst {
		dst[i] = 0
	}
	if !useQ {
		XOR(dst, pq)
		for _, b := range survivors {
			XOR(dst, b)
		}
		return
	}
	XOR(dst, pq)
	for j, b := range survivors {
		mulInto(dst, b, gfPow(j))
	}
	inv := gfInv(gfPow(idx))
	for i := range dst {
		dst[i] = gfMul(dst[i], inv)
	}
}

// ReconstructTwoPQ recovers two missing data blocks x and y (x != y)
// given both P and Q and the surviving data blocks, writing results into
// dx and dy. Standard RAID 6 double-erasure decode:
//
//	Pxy = P ^ sum(survivors)            (= dx ^ dy)
//	Qxy = Q ^ sum(g^j survivors_j)      (= g^x dx ^ g^y dy)
//	dx  = (g^(y-x) Pxy ^ g^(-x) Qxy) / (g^(y-x) ^ 1)
//	dy  = Pxy ^ dx
func ReconstructTwoPQ(dx, dy []byte, x, y int, p, q []byte, survivors map[int][]byte) {
	if x == y {
		panic(fmt.Sprintf("parity: ReconstructTwoPQ with x == y == %d", x))
	}
	n := len(p)
	pxy := make([]byte, n)
	qxy := make([]byte, n)
	copy(pxy, p)
	copy(qxy, q)
	for j, b := range survivors {
		XOR(pxy, b)
		mulInto(qxy, b, gfPow(j))
	}
	// a = g^(y-x), b = g^(-x)
	a := gfPow(y - x)
	binv := gfPow(-x)
	denom := a ^ 1
	for i := 0; i < n; i++ {
		dx[i] = gfDiv(gfMul(a, pxy[i])^gfMul(binv, qxy[i]), denom)
		dy[i] = pxy[i] ^ dx[i]
	}
}

// UpdateQ applies the read-modify-write delta to a Q parity block for
// data block idx: Q ^= g^idx * (old ^ new). The RAID 6 analogue of
// Update.
func UpdateQ(q, oldData, newData []byte, idx int) {
	delta := make([]byte, len(oldData))
	copy(delta, oldData)
	XOR(delta, newData)
	mulInto(q, delta, gfPow(idx))
}

// CheckPQ reports whether p and q are consistent with blocks.
func CheckPQ(p, q []byte, blocks ...[]byte) bool {
	tp := make([]byte, len(p))
	tq := make([]byte, len(q))
	ComputePQ(tp, tq, blocks...)
	for i := range tp {
		if tp[i] != p[i] || tq[i] != q[i] {
			return false
		}
	}
	return true
}
