//go:build arm64 && !noasm

package parity

import "testing"

// Advanced SIMD is architecturally mandatory on AArch64, so the NEON
// backend must always be selected outside noasm builds.
func TestARM64KernelIsNEON(t *testing.T) {
	if k := Kernel(); k != "neon" {
		t.Fatalf("Kernel() = %q on arm64, want neon", k)
	}
}
