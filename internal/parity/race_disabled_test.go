//go:build !race

package parity

const raceEnabled = false
