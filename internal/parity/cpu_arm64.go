//go:build arm64 && !noasm

package parity

// NEON backend. Advanced SIMD is architecturally mandatory on AArch64,
// so there is no feature probe: init unconditionally installs the
// kernels (unless the noasm tag compiled this file out). The asm
// processes 16-byte lanes over the n&^15 prefix; wrappers finish the
// tail with the generic kernels, so any length/alignment is legal.

//go:noescape
func xorNEON(dst, src *byte, n int)

//go:noescape
func xorInto2NEON(dst, a, b *byte, n int)

//go:noescape
func xorInto3NEON(dst, a, b, c *byte, n int)

//go:noescape
func xorInto4NEON(dst, a, b, c, e *byte, n int)

//go:noescape
func gfMulXorNEON(dst, src *byte, n int, tab *[32]byte)

//go:noescape
func gfFoldPQNEON(p, q, src *byte, n int, tab *[32]byte)

//go:noescape
func gfMulUpdNEON(q, old, new *byte, n int, tab *[32]byte)

func init() {
	buildNibTables()
	xorKernel = xorNEONWrap
	xorInto2Kernel = xorInto2NEONWrap
	xorInto3Kernel = xorInto3NEONWrap
	xorInto4Kernel = xorInto4NEONWrap
	gfMulXorKernel = gfMulXorNEONWrap
	gfFoldPQKernel = gfFoldPQNEONWrap
	gfMulUpdKernel = gfMulUpdNEONWrap
	kernelName = "neon"
}

func xorNEONWrap(dst, src []byte) {
	n := len(dst) &^ 15
	if n != 0 {
		xorNEON(&dst[0], &src[0], n)
	}
	if n != len(dst) {
		xorGeneric(dst[n:], src[n:])
	}
}

func xorInto2NEONWrap(dst, a, b []byte) {
	n := len(dst) &^ 15
	if n != 0 {
		xorInto2NEON(&dst[0], &a[0], &b[0], n)
	}
	if n != len(dst) {
		xorInto2Generic(dst[n:], a[n:], b[n:])
	}
}

func xorInto3NEONWrap(dst, a, b, c []byte) {
	n := len(dst) &^ 15
	if n != 0 {
		xorInto3NEON(&dst[0], &a[0], &b[0], &c[0], n)
	}
	if n != len(dst) {
		xorInto3Generic(dst[n:], a[n:], b[n:], c[n:])
	}
}

func xorInto4NEONWrap(dst, a, b, c, e []byte) {
	n := len(dst) &^ 15
	if n != 0 {
		xorInto4NEON(&dst[0], &a[0], &b[0], &c[0], &e[0], n)
	}
	if n != len(dst) {
		xorInto4Generic(dst[n:], a[n:], b[n:], c[n:], e[n:])
	}
}

func gfMulXorNEONWrap(dst, src []byte, c byte) {
	n := len(src) &^ 15
	if n != 0 {
		gfMulXorNEON(&dst[0], &src[0], n, &gfNib[c])
	}
	if n != len(src) {
		gfMulXorGeneric(dst[n:], src[n:], c)
	}
}

func gfFoldPQNEONWrap(p, q, src []byte, c byte) {
	n := len(src) &^ 15
	if n != 0 {
		gfFoldPQNEON(&p[0], &q[0], &src[0], n, &gfNib[c])
	}
	if n != len(src) {
		foldPQGeneric(p[n:], q[n:], src[n:], c)
	}
}

func gfMulUpdNEONWrap(q, oldData, newData []byte, c byte) {
	n := len(q) &^ 15
	if n != 0 {
		gfMulUpdNEON(&q[0], &oldData[0], &newData[0], n, &gfNib[c])
	}
	if n != len(q) {
		mulUpdateGeneric(q[n:], oldData[n:], newData[n:], c)
	}
}
