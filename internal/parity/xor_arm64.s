//go:build arm64 && !noasm

#include "textflag.h"

// NEON XOR fold/gather kernels. Entry points require n > 0 and
// n % 16 == 0; wrappers finish tails with the generic kernels. VLD1/VST1
// have no alignment requirement.

// func xorNEON(dst, src *byte, n int)
TEXT ·xorNEON(SB), NOSPLIT, $0-24
	MOVD dst+0(FP), R0
	MOVD src+8(FP), R1
	MOVD n+16(FP), R2

loop64:
	CMP  $64, R2
	BLT  loop16
	VLD1 (R0), [V4.B16, V5.B16, V6.B16, V7.B16]
	VLD1.P 64(R1), [V0.B16, V1.B16, V2.B16, V3.B16]
	VEOR V4.B16, V0.B16, V0.B16
	VEOR V5.B16, V1.B16, V1.B16
	VEOR V6.B16, V2.B16, V2.B16
	VEOR V7.B16, V3.B16, V3.B16
	VST1.P [V0.B16, V1.B16, V2.B16, V3.B16], 64(R0)
	SUB  $64, R2
	CBNZ R2, loop64
	RET

loop16:
	CBZ  R2, done
	VLD1 (R0), [V1.B16]
	VLD1.P 16(R1), [V0.B16]
	VEOR V1.B16, V0.B16, V0.B16
	VST1.P [V0.B16], 16(R0)
	SUB  $16, R2
	B    loop16

done:
	RET

// func xorInto2NEON(dst, a, b *byte, n int)
TEXT ·xorInto2NEON(SB), NOSPLIT, $0-32
	MOVD dst+0(FP), R0
	MOVD a+8(FP), R1
	MOVD b+16(FP), R2
	MOVD n+24(FP), R3

loop16:
	VLD1.P 16(R1), [V0.B16]
	VLD1.P 16(R2), [V1.B16]
	VLD1 (R0), [V2.B16]
	VEOR V1.B16, V0.B16, V0.B16
	VEOR V2.B16, V0.B16, V0.B16
	VST1.P [V0.B16], 16(R0)
	SUBS $16, R3
	BNE  loop16
	RET

// func xorInto3NEON(dst, a, b, c *byte, n int)
TEXT ·xorInto3NEON(SB), NOSPLIT, $0-40
	MOVD dst+0(FP), R0
	MOVD a+8(FP), R1
	MOVD b+16(FP), R2
	MOVD c+24(FP), R4
	MOVD n+32(FP), R3

loop16:
	VLD1.P 16(R1), [V0.B16]
	VLD1.P 16(R2), [V1.B16]
	VLD1.P 16(R4), [V2.B16]
	VLD1 (R0), [V3.B16]
	VEOR V1.B16, V0.B16, V0.B16
	VEOR V2.B16, V0.B16, V0.B16
	VEOR V3.B16, V0.B16, V0.B16
	VST1.P [V0.B16], 16(R0)
	SUBS $16, R3
	BNE  loop16
	RET

// func xorInto4NEON(dst, a, b, c, e *byte, n int)
TEXT ·xorInto4NEON(SB), NOSPLIT, $0-48
	MOVD dst+0(FP), R0
	MOVD a+8(FP), R1
	MOVD b+16(FP), R2
	MOVD c+24(FP), R4
	MOVD e+32(FP), R5
	MOVD n+40(FP), R3

loop16:
	VLD1.P 16(R1), [V0.B16]
	VLD1.P 16(R2), [V1.B16]
	VLD1.P 16(R4), [V2.B16]
	VLD1.P 16(R5), [V3.B16]
	VLD1 (R0), [V4.B16]
	VEOR V1.B16, V0.B16, V0.B16
	VEOR V2.B16, V0.B16, V0.B16
	VEOR V3.B16, V0.B16, V0.B16
	VEOR V4.B16, V0.B16, V0.B16
	VST1.P [V0.B16], 16(R0)
	SUBS $16, R3
	BNE  loop16
	RET
