//go:build amd64 && !noasm

package parity

import "testing"

// The selected backend must agree with what the CPU reports: AVX2
// hardware gets the asm kernels, anything older keeps the generic ones.
func TestAMD64KernelMatchesCPUID(t *testing.T) {
	want := "generic"
	if hasAVX2() {
		want = "avx2"
	}
	if k := Kernel(); k != want {
		t.Fatalf("Kernel() = %q, want %q (hasAVX2=%v)", k, want, hasAVX2())
	}
}
