//go:build amd64 && !noasm

#include "textflag.h"

// AVX2 XOR fold/gather kernels. Every entry point requires n > 0 and
// n % 32 == 0 (the Go wrappers mask the length and finish the tail with
// the generic kernels). All loads/stores are unaligned forms, so the
// callers owe no alignment. VZEROUPPER before every RET keeps the SSE
// units out of the AVX transition penalty.

// func xorAVX2(dst, src *byte, n int)
TEXT ·xorAVX2(SB), NOSPLIT, $0-24
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ n+16(FP), CX
	XORQ AX, AX

loop128:
	CMPQ CX, $128
	JB   loop32
	VMOVDQU (SI)(AX*1), Y0
	VMOVDQU 32(SI)(AX*1), Y1
	VMOVDQU 64(SI)(AX*1), Y2
	VMOVDQU 96(SI)(AX*1), Y3
	VPXOR   (DI)(AX*1), Y0, Y0
	VPXOR   32(DI)(AX*1), Y1, Y1
	VPXOR   64(DI)(AX*1), Y2, Y2
	VPXOR   96(DI)(AX*1), Y3, Y3
	VMOVDQU Y0, (DI)(AX*1)
	VMOVDQU Y1, 32(DI)(AX*1)
	VMOVDQU Y2, 64(DI)(AX*1)
	VMOVDQU Y3, 96(DI)(AX*1)
	ADDQ    $128, AX
	SUBQ    $128, CX
	JMP     loop128

loop32:
	CMPQ CX, $32
	JB   done
	VMOVDQU (SI)(AX*1), Y0
	VPXOR   (DI)(AX*1), Y0, Y0
	VMOVDQU Y0, (DI)(AX*1)
	ADDQ    $32, AX
	SUBQ    $32, CX
	JMP     loop32

done:
	VZEROUPPER
	RET

// func xorInto2AVX2(dst, a, b *byte, n int)
TEXT ·xorInto2AVX2(SB), NOSPLIT, $0-32
	MOVQ dst+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ b+16(FP), R8
	MOVQ n+24(FP), CX
	XORQ AX, AX

loop32:
	VMOVDQU (SI)(AX*1), Y0
	VPXOR   (R8)(AX*1), Y0, Y0
	VPXOR   (DI)(AX*1), Y0, Y0
	VMOVDQU Y0, (DI)(AX*1)
	ADDQ    $32, AX
	SUBQ    $32, CX
	JNZ     loop32
	VZEROUPPER
	RET

// func xorInto3AVX2(dst, a, b, c *byte, n int)
TEXT ·xorInto3AVX2(SB), NOSPLIT, $0-40
	MOVQ dst+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ b+16(FP), R8
	MOVQ c+24(FP), R9
	MOVQ n+32(FP), CX
	XORQ AX, AX

loop32:
	VMOVDQU (SI)(AX*1), Y0
	VPXOR   (R8)(AX*1), Y0, Y0
	VPXOR   (R9)(AX*1), Y0, Y0
	VPXOR   (DI)(AX*1), Y0, Y0
	VMOVDQU Y0, (DI)(AX*1)
	ADDQ    $32, AX
	SUBQ    $32, CX
	JNZ     loop32
	VZEROUPPER
	RET

// func xorInto4AVX2(dst, a, b, c, e *byte, n int)
TEXT ·xorInto4AVX2(SB), NOSPLIT, $0-48
	MOVQ dst+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ b+16(FP), R8
	MOVQ c+24(FP), R9
	MOVQ e+32(FP), R10
	MOVQ n+40(FP), CX
	XORQ AX, AX

loop32:
	VMOVDQU (SI)(AX*1), Y0
	VPXOR   (R8)(AX*1), Y0, Y0
	VPXOR   (R9)(AX*1), Y0, Y0
	VPXOR   (R10)(AX*1), Y0, Y0
	VPXOR   (DI)(AX*1), Y0, Y0
	VMOVDQU Y0, (DI)(AX*1)
	ADDQ    $32, AX
	SUBQ    $32, CX
	JNZ     loop32
	VZEROUPPER
	RET
