//go:build (amd64 || arm64) && !noasm

package parity

// gfNib holds the split-nibble multiplication tables consumed by the
// shuffle kernels (PSHUFB on amd64, TBL on arm64). For coefficient c,
// gfNib[c][0:16] is lo[i] = c*i and gfNib[c][16:32] is hi[i] = c*(i<<4),
// so c*x = lo[x&15] ^ hi[x>>4] — multiplication is linear over GF(2), so
// the two nibble products XOR together. 8 KiB total, built once at init.
var gfNib [256][32]byte

// buildNibTables fills gfNib. It multiplies with a standalone shift-xor
// routine instead of gfMulTab because package init order is file-name
// sorted: the arch init()s (cpu_amd64.go / cpu_arm64.go) run before
// gf256.go's table init.
func buildNibTables() {
	for c := 0; c < 256; c++ {
		for i := 0; i < 16; i++ {
			gfNib[c][i] = gfMulSlow(byte(c), byte(i))
			gfNib[c][16+i] = gfMulSlow(byte(c), byte(i<<4))
		}
	}
}

// gfMulSlow is carry-less multiplication mod 0x11d, independent of the
// log/antilog tables.
func gfMulSlow(a, b byte) byte {
	var p byte
	for b != 0 {
		if b&1 != 0 {
			p ^= a
		}
		carry := a&0x80 != 0
		a <<= 1
		if carry {
			a ^= 0x1d
		}
		b >>= 1
	}
	return p
}
