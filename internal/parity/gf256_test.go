package parity

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestGFMulProperties(t *testing.T) {
	// Identity, zero, commutativity, and distributivity over a sample.
	for a := 0; a < 256; a++ {
		if gfMul(byte(a), 1) != byte(a) {
			t.Fatalf("a*1 != a for a=%d", a)
		}
		if gfMul(byte(a), 0) != 0 {
			t.Fatalf("a*0 != 0 for a=%d", a)
		}
	}
	prop := func(a, b, c byte) bool {
		if gfMul(a, b) != gfMul(b, a) {
			return false
		}
		return gfMul(a, b^c) == gfMul(a, b)^gfMul(a, c)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGFInverse(t *testing.T) {
	for a := 1; a < 256; a++ {
		if gfMul(byte(a), gfInv(byte(a))) != 1 {
			t.Fatalf("a * a^-1 != 1 for a=%d", a)
		}
	}
}

func TestGFDivInvertsMul(t *testing.T) {
	prop := func(a, b byte) bool {
		if b == 0 {
			return true
		}
		return gfDiv(gfMul(a, b), b) == a
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGFPowCycle(t *testing.T) {
	if gfPow(0) != 1 {
		t.Fatal("g^0 != 1")
	}
	if gfPow(255) != 1 {
		t.Fatal("g^255 != 1 (generator order)")
	}
	if gfPow(-1) != gfInv(gfPow(1)) {
		t.Fatal("g^-1 != inverse of g")
	}
}

func randomBlocks(seed uint64, width, blockLen int) [][]byte {
	s := seed
	next := func() byte {
		s = s*6364136223846793005 + 1442695040888963407
		return byte(s >> 56)
	}
	blocks := make([][]byte, width)
	for i := range blocks {
		blocks[i] = make([]byte, blockLen)
		for j := range blocks[i] {
			blocks[i][j] = next()
		}
	}
	return blocks
}

func TestPQSingleReconstruction(t *testing.T) {
	prop := func(seed uint64, wv uint8) bool {
		width := int(wv%6) + 2
		blocks := randomBlocks(seed, width, 48)
		p := make([]byte, 48)
		q := make([]byte, 48)
		ComputePQ(p, q, blocks...)
		for lost := 0; lost < width; lost++ {
			survivors := map[int][]byte{}
			for i, b := range blocks {
				if i != lost {
					survivors[i] = b
				}
			}
			gotP := make([]byte, 48)
			ReconstructOnePQ(gotP, lost, false, p, survivors)
			if !bytes.Equal(gotP, blocks[lost]) {
				return false
			}
			gotQ := make([]byte, 48)
			ReconstructOnePQ(gotQ, lost, true, q, survivors)
			if !bytes.Equal(gotQ, blocks[lost]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPQDoubleReconstruction(t *testing.T) {
	prop := func(seed uint64, wv uint8) bool {
		width := int(wv%5) + 3 // 3..7 data blocks
		blocks := randomBlocks(seed, width, 40)
		p := make([]byte, 40)
		q := make([]byte, 40)
		ComputePQ(p, q, blocks...)
		for x := 0; x < width; x++ {
			for y := x + 1; y < width; y++ {
				survivors := map[int][]byte{}
				for i, b := range blocks {
					if i != x && i != y {
						survivors[i] = b
					}
				}
				dx := make([]byte, 40)
				dy := make([]byte, 40)
				ReconstructTwoPQ(dx, dy, x, y, p, q, survivors)
				if !bytes.Equal(dx, blocks[x]) || !bytes.Equal(dy, blocks[y]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestCheckPQDetectsCorruption(t *testing.T) {
	blocks := randomBlocks(99, 4, 32)
	p := make([]byte, 32)
	q := make([]byte, 32)
	ComputePQ(p, q, blocks...)
	if !CheckPQ(p, q, blocks...) {
		t.Fatal("CheckPQ rejected valid parity")
	}
	q[5] ^= 0x01
	if CheckPQ(p, q, blocks...) {
		t.Fatal("CheckPQ accepted corrupted Q")
	}
}

func TestPQMatchesXORForP(t *testing.T) {
	blocks := randomBlocks(7, 5, 16)
	p := make([]byte, 16)
	q := make([]byte, 16)
	ComputePQ(p, q, blocks...)
	p2 := make([]byte, 16)
	Compute(p2, blocks...)
	if !bytes.Equal(p, p2) {
		t.Fatal("RAID 6 P parity differs from RAID 5 XOR parity")
	}
}

func TestReconstructTwoSameIndexPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("x == y did not panic")
		}
	}()
	ReconstructTwoPQ(make([]byte, 4), make([]byte, 4), 2, 2, make([]byte, 4), make([]byte, 4), nil)
}
