package parity

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestXORInvolution(t *testing.T) {
	prop := func(a, b []byte) bool {
		if len(a) > len(b) {
			a = a[:len(b)]
		} else {
			b = b[:len(a)]
		}
		orig := append([]byte(nil), a...)
		XOR(a, b)
		XOR(a, b)
		return bytes.Equal(a, orig)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestXORMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("length mismatch did not panic")
		}
	}()
	XOR(make([]byte, 3), make([]byte, 4))
}

func TestComputeAndCheck(t *testing.T) {
	blocks := [][]byte{
		{1, 2, 3, 4},
		{5, 6, 7, 8},
		{9, 10, 11, 12},
	}
	p := make([]byte, 4)
	Compute(p, blocks...)
	want := []byte{1 ^ 5 ^ 9, 2 ^ 6 ^ 10, 3 ^ 7 ^ 11, 4 ^ 8 ^ 12}
	if !bytes.Equal(p, want) {
		t.Fatalf("parity = %v, want %v", p, want)
	}
	if !Check(p, blocks...) {
		t.Fatal("Check rejected correct parity")
	}
	p[0] ^= 0xff
	if Check(p, blocks...) {
		t.Fatal("Check accepted corrupted parity")
	}
}

func TestReconstructAnySingleBlock(t *testing.T) {
	prop := func(seed int64, n uint8) bool {
		width := int(n%6) + 2 // 2..7 data blocks
		blockLen := 64
		blocks := make([][]byte, width)
		s := uint64(seed)
		next := func() byte {
			s = s*6364136223846793005 + 1442695040888963407
			return byte(s >> 56)
		}
		for i := range blocks {
			blocks[i] = make([]byte, blockLen)
			for j := range blocks[i] {
				blocks[i][j] = next()
			}
		}
		p := make([]byte, blockLen)
		Compute(p, blocks...)
		for lost := 0; lost < width; lost++ {
			survivors := make([][]byte, 0, width-1)
			for i, b := range blocks {
				if i != lost {
					survivors = append(survivors, b)
				}
			}
			got := make([]byte, blockLen)
			Reconstruct(got, p, survivors...)
			if !bytes.Equal(got, blocks[lost]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestUpdateEquivalentToRecompute(t *testing.T) {
	prop := func(a, b, c, newB []byte) bool {
		n := 32
		pad := func(x []byte) []byte {
			out := make([]byte, n)
			copy(out, x)
			return out
		}
		a, b, c, newB = pad(a), pad(b), pad(c), pad(newB)
		p := make([]byte, n)
		Compute(p, a, b, c)
		// read-modify-write path
		Update(p, b, newB)
		// recompute path
		p2 := make([]byte, n)
		Compute(p2, a, newB, c)
		return bytes.Equal(p, p2)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestComputeNoBlocksPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no blocks did not panic")
		}
	}()
	Compute(make([]byte, 4))
}
