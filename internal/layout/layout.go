// Package layout implements the striping address arithmetic for the
// array: RAID 0, left-symmetric RAID 5 (the layout the paper assumes),
// and a rotated P+Q RAID 6 layout for the §5 extension.
//
// Terminology follows the paper: a *stripe* is one row of stripe units
// across all disks; a *stripe unit* (or strip) is the contiguous chunk a
// single disk contributes to a stripe (8 KB by default, the paper's
// "stripe depth").
package layout

import "fmt"

// Level selects the redundancy organization.
type Level int

const (
	// RAID0 stripes data with no redundancy.
	RAID0 Level = iota
	// RAID5 uses one rotating XOR parity unit per stripe
	// (left-symmetric placement).
	RAID5
	// RAID6 uses rotating P and Q units per stripe.
	RAID6
)

// String returns the conventional name of the level.
func (l Level) String() string {
	switch l {
	case RAID0:
		return "RAID0"
	case RAID5:
		return "RAID5"
	case RAID6:
		return "RAID6"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

// ParityUnits returns the number of stripe units per stripe devoted to
// redundancy.
func (l Level) ParityUnits() int {
	switch l {
	case RAID0:
		return 0
	case RAID5:
		return 1
	case RAID6:
		return 2
	default:
		panic(fmt.Sprintf("layout: unknown level %d", int(l)))
	}
}

// Geometry describes an array's striping parameters.
type Geometry struct {
	Disks      int   // total number of disks, including parity
	StripeUnit int64 // bytes per stripe unit (the paper's S, 8 KB)
	DiskSize   int64 // usable bytes per disk; must be a multiple of StripeUnit
	Level      Level
}

// Validate reports whether the geometry is usable.
func (g Geometry) Validate() error {
	if g.StripeUnit <= 0 {
		return fmt.Errorf("layout: stripe unit %d must be positive", g.StripeUnit)
	}
	if g.DiskSize <= 0 || g.DiskSize%g.StripeUnit != 0 {
		return fmt.Errorf("layout: disk size %d must be a positive multiple of stripe unit %d", g.DiskSize, g.StripeUnit)
	}
	min := g.Level.ParityUnits() + 1
	if g.Disks < min {
		return fmt.Errorf("layout: %s needs at least %d disks, have %d", g.Level, min, g.Disks)
	}
	return nil
}

// DataDisks returns the number of data units per stripe (the paper's N).
func (g Geometry) DataDisks() int { return g.Disks - g.Level.ParityUnits() }

// Stripes returns the number of stripes in the array.
func (g Geometry) Stripes() int64 { return g.DiskSize / g.StripeUnit }

// StripeDataBytes returns the client-visible bytes per stripe.
func (g Geometry) StripeDataBytes() int64 { return int64(g.DataDisks()) * g.StripeUnit }

// Capacity returns the client-visible capacity of the array.
func (g Geometry) Capacity() int64 { return g.Stripes() * g.StripeDataBytes() }

// DiskOffset returns the byte offset on every disk of the given stripe's
// stripe unit.
func (g Geometry) DiskOffset(stripe int64) int64 { return stripe * g.StripeUnit }

// ChecksumSlotSize is the size of one per-unit checksum slot in a
// device's checksum trailer: a 4-byte magic followed by the stripe
// unit's CRC32C, both big-endian.
const ChecksumSlotSize = 8

// ChecksumTrailerBytes returns the per-device checksum trailer size for
// this geometry: one slot per stripe, rounded up to whole stripe-unit
// pages so the trailer never shares a page with client data.
func (g Geometry) ChecksumTrailerBytes() int64 {
	raw := g.Stripes() * ChecksumSlotSize
	return (raw + g.StripeUnit - 1) / g.StripeUnit * g.StripeUnit
}

// ChecksumOff returns the device byte offset of the checksum slot for a
// stripe's unit on that device. Trailers start immediately past the
// usable disk bytes.
func (g Geometry) ChecksumOff(stripe int64) int64 {
	return g.DiskSize + stripe*ChecksumSlotSize
}

// UsableDiskSize returns the largest stripe-unit multiple S of a raw
// device size such that S plus the checksum trailer for S stripes still
// fits on the device when checksums are enabled (just the truncation to
// whole units otherwise). Zero means the device is too small.
func UsableDiskSize(raw, stripeUnit int64, checksums bool) int64 {
	s := raw / stripeUnit * stripeUnit
	if !checksums {
		return s
	}
	for s > 0 {
		g := Geometry{StripeUnit: stripeUnit, DiskSize: s}
		if s+g.ChecksumTrailerBytes() <= raw {
			return s
		}
		s -= stripeUnit
	}
	return 0
}

// ParityDisk returns the disk holding the (P) parity unit of a stripe.
// Left-symmetric: parity starts on the last disk for stripe 0 and
// rotates one disk to the left each stripe. RAID 0 has no parity and
// returns -1.
func (g Geometry) ParityDisk(stripe int64) int {
	if g.Level == RAID0 {
		return -1
	}
	return g.Disks - 1 - int(stripe%int64(g.Disks))
}

// QDisk returns the disk holding the Q parity unit of a stripe (RAID 6
// only; -1 otherwise). Q sits immediately after P, wrapping around.
func (g Geometry) QDisk(stripe int64) int {
	if g.Level != RAID6 {
		return -1
	}
	return (g.ParityDisk(stripe) + 1) % g.Disks
}

// DataDisk returns the disk holding data unit idx (0-based within the
// stripe) of the given stripe. In the left-symmetric layout, data units
// occupy the disks following the parity unit(s) in rotation, so that
// consecutive stripes place consecutive data on consecutive disks.
func (g Geometry) DataDisk(stripe int64, idx int) int {
	if idx < 0 || idx >= g.DataDisks() {
		panic(fmt.Sprintf("layout: data index %d out of range [0,%d)", idx, g.DataDisks()))
	}
	switch g.Level {
	case RAID0:
		return (int(stripe%int64(g.Disks)) + idx) % g.Disks
	case RAID5:
		return (g.ParityDisk(stripe) + 1 + idx) % g.Disks
	case RAID6:
		return (g.QDisk(stripe) + 1 + idx) % g.Disks
	default:
		panic(fmt.Sprintf("layout: unknown level %d", int(g.Level)))
	}
}

// Role identifies what a stripe unit on a particular disk holds.
type Role int

const (
	// Data marks a client-data stripe unit.
	Data Role = iota
	// Parity marks the P (XOR) parity unit.
	Parity
	// ParityQ marks the Q unit of RAID 6.
	ParityQ
)

// String returns the role name.
func (r Role) String() string {
	switch r {
	case Data:
		return "data"
	case Parity:
		return "parity"
	case ParityQ:
		return "parityQ"
	default:
		return fmt.Sprintf("Role(%d)", int(r))
	}
}

// RoleOf returns the role of the stripe unit on disk within stripe, and
// the data index when the role is Data (-1 otherwise).
func (g Geometry) RoleOf(stripe int64, disk int) (Role, int) {
	if disk < 0 || disk >= g.Disks {
		panic(fmt.Sprintf("layout: disk %d out of range [0,%d)", disk, g.Disks))
	}
	if g.Level != RAID0 && disk == g.ParityDisk(stripe) {
		return Parity, -1
	}
	if g.Level == RAID6 && disk == g.QDisk(stripe) {
		return ParityQ, -1
	}
	var base int
	switch g.Level {
	case RAID0:
		base = int(stripe % int64(g.Disks))
	case RAID5:
		base = (g.ParityDisk(stripe) + 1) % g.Disks
	case RAID6:
		base = (g.QDisk(stripe) + 1) % g.Disks
	}
	idx := (disk - base + g.Disks) % g.Disks
	return Data, idx
}

// Loc is the physical location of a single array byte range that lies
// entirely within one stripe unit.
type Loc struct {
	Stripe  int64 // stripe number
	DataIdx int   // data unit index within the stripe
	Disk    int   // physical disk
	DiskOff int64 // byte offset on that disk
}

// Locate maps a client byte address to its physical location. It panics
// if addr is out of range; callers validate request bounds.
func (g Geometry) Locate(addr int64) Loc {
	if addr < 0 || addr >= g.Capacity() {
		panic(fmt.Sprintf("layout: address %d out of range [0,%d)", addr, g.Capacity()))
	}
	stripe := addr / g.StripeDataBytes()
	within := addr % g.StripeDataBytes()
	idx := int(within / g.StripeUnit)
	unitOff := within % g.StripeUnit
	disk := g.DataDisk(stripe, idx)
	return Loc{
		Stripe:  stripe,
		DataIdx: idx,
		Disk:    disk,
		DiskOff: g.DiskOffset(stripe) + unitOff,
	}
}

// Extent is a contiguous byte range of a single stripe unit touched by a
// client request.
type Extent struct {
	Stripe  int64
	DataIdx int   // data unit index within the stripe
	Disk    int   // physical disk holding the unit
	DiskOff int64 // starting byte offset on the disk
	UnitOff int64 // starting byte offset within the stripe unit
	Len     int64 // bytes
	ArrOff  int64 // client address of the first byte
}

// StripeSpan groups the extents of one request that fall in one stripe.
type StripeSpan struct {
	Stripe  int64
	Extents []Extent
}

// FullStripe reports whether the span covers every data byte of the
// stripe (enabling a reconstruct-write that needs no pre-reads).
func (s StripeSpan) FullStripe(g Geometry) bool {
	var n int64
	for _, e := range s.Extents {
		n += e.Len
	}
	return n == g.StripeDataBytes()
}

// Bytes returns the total data bytes in the span.
func (s StripeSpan) Bytes() int64 {
	var n int64
	for _, e := range s.Extents {
		n += e.Len
	}
	return n
}

// Split decomposes the client byte range [off, off+length) into per-
// stripe spans of per-unit extents, in ascending address order.
func (g Geometry) Split(off, length int64) []StripeSpan {
	return g.SplitAppend(nil, off, length)
}

// SplitAppend is Split writing into spans: the slice's capacity is
// reused, and so is the Extents capacity of any recycled entries, so a
// caller that pools its span slice splits I/Os with zero steady-state
// allocation. Pass spans[:0] to reuse, nil for Split's behavior.
func (g Geometry) SplitAppend(spans []StripeSpan, off, length int64) []StripeSpan {
	if length < 0 {
		panic(fmt.Sprintf("layout: negative length %d", length))
	}
	if off < 0 || off+length > g.Capacity() {
		panic(fmt.Sprintf("layout: range [%d,%d) outside capacity %d", off, off+length, g.Capacity()))
	}
	addr := off
	remaining := length
	for remaining > 0 {
		loc := g.Locate(addr)
		unitOff := addr % g.StripeUnit
		n := g.StripeUnit - unitOff
		if n > remaining {
			n = remaining
		}
		ext := Extent{
			Stripe:  loc.Stripe,
			DataIdx: loc.DataIdx,
			Disk:    loc.Disk,
			DiskOff: loc.DiskOff,
			UnitOff: unitOff,
			Len:     n,
			ArrOff:  addr,
		}
		switch k := len(spans); {
		case k > 0 && spans[k-1].Stripe == loc.Stripe:
			last := &spans[k-1]
			last.Extents = append(last.Extents, ext)
		case cap(spans) > k:
			// Recycled entry: keep its Extents backing array.
			spans = spans[:k+1]
			sp := &spans[k]
			sp.Stripe = loc.Stripe
			sp.Extents = append(sp.Extents[:0], ext)
		default:
			spans = append(spans, StripeSpan{Stripe: loc.Stripe, Extents: []Extent{ext}})
		}
		addr += n
		remaining -= n
	}
	return spans
}
