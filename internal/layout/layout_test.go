package layout

import (
	"testing"
	"testing/quick"
)

func geo5() Geometry {
	return Geometry{Disks: 5, StripeUnit: 8 << 10, DiskSize: 64 << 20, Level: RAID5}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		g  Geometry
		ok bool
	}{
		{geo5(), true},
		{Geometry{Disks: 1, StripeUnit: 8 << 10, DiskSize: 64 << 20, Level: RAID5}, false},
		{Geometry{Disks: 2, StripeUnit: 8 << 10, DiskSize: 64 << 20, Level: RAID5}, true},
		{Geometry{Disks: 2, StripeUnit: 8 << 10, DiskSize: 64 << 20, Level: RAID6}, false},
		{Geometry{Disks: 3, StripeUnit: 8 << 10, DiskSize: 64 << 20, Level: RAID6}, true},
		{Geometry{Disks: 1, StripeUnit: 8 << 10, DiskSize: 64 << 20, Level: RAID0}, true},
		{Geometry{Disks: 5, StripeUnit: 0, DiskSize: 64 << 20, Level: RAID5}, false},
		{Geometry{Disks: 5, StripeUnit: 8 << 10, DiskSize: 100, Level: RAID5}, false},
	}
	for i, c := range cases {
		err := c.g.Validate()
		if (err == nil) != c.ok {
			t.Errorf("case %d: Validate() err=%v, want ok=%v", i, err, c.ok)
		}
	}
}

func TestCapacityArithmetic(t *testing.T) {
	g := geo5()
	if g.DataDisks() != 4 {
		t.Fatalf("DataDisks = %d", g.DataDisks())
	}
	if g.Stripes() != (64<<20)/(8<<10) {
		t.Fatalf("Stripes = %d", g.Stripes())
	}
	if g.Capacity() != 4*(64<<20) {
		t.Fatalf("Capacity = %d", g.Capacity())
	}
	g.Level = RAID0
	if g.Capacity() != 5*(64<<20) {
		t.Fatalf("RAID0 capacity = %d", g.Capacity())
	}
	g.Level = RAID6
	if g.Capacity() != 3*(64<<20) {
		t.Fatalf("RAID6 capacity = %d", g.Capacity())
	}
}

func TestParityRotatesLeftSymmetric(t *testing.T) {
	g := geo5()
	// Stripe 0 parity on last disk, then rotating left.
	want := []int{4, 3, 2, 1, 0, 4, 3}
	for s, w := range want {
		if got := g.ParityDisk(int64(s)); got != w {
			t.Fatalf("ParityDisk(%d) = %d, want %d", s, got, w)
		}
	}
}

func TestParityEvenlySpread(t *testing.T) {
	g := geo5()
	counts := make([]int, g.Disks)
	for s := int64(0); s < 100; s++ {
		counts[g.ParityDisk(s)]++
	}
	for d, c := range counts {
		if c != 20 {
			t.Fatalf("disk %d holds %d parity units out of 100 stripes", d, c)
		}
	}
}

func TestDataDisksDistinctFromParity(t *testing.T) {
	for _, lvl := range []Level{RAID5, RAID6} {
		g := geo5()
		g.Level = lvl
		for s := int64(0); s < 50; s++ {
			used := map[int]bool{}
			if p := g.ParityDisk(s); p >= 0 {
				used[p] = true
			}
			if q := g.QDisk(s); q >= 0 {
				if used[q] {
					t.Fatalf("%s stripe %d: Q collides with P", lvl, s)
				}
				used[q] = true
			}
			for i := 0; i < g.DataDisks(); i++ {
				d := g.DataDisk(s, i)
				if used[d] {
					t.Fatalf("%s stripe %d: data %d collides on disk %d", lvl, s, i, d)
				}
				used[d] = true
			}
			if len(used) != g.Disks {
				t.Fatalf("%s stripe %d: only %d disks used", lvl, s, len(used))
			}
		}
	}
}

func TestRoleOfInvertsDataDisk(t *testing.T) {
	for _, lvl := range []Level{RAID0, RAID5, RAID6} {
		g := geo5()
		g.Level = lvl
		for s := int64(0); s < 30; s++ {
			for i := 0; i < g.DataDisks(); i++ {
				d := g.DataDisk(s, i)
				role, idx := g.RoleOf(s, d)
				if role != Data || idx != i {
					t.Fatalf("%s stripe %d: RoleOf(disk %d) = %v,%d, want data,%d", lvl, s, d, role, idx, i)
				}
			}
			if lvl != RAID0 {
				role, _ := g.RoleOf(s, g.ParityDisk(s))
				if role != Parity {
					t.Fatalf("%s stripe %d: parity disk role = %v", lvl, s, role)
				}
			}
			if lvl == RAID6 {
				role, _ := g.RoleOf(s, g.QDisk(s))
				if role != ParityQ {
					t.Fatalf("stripe %d: Q disk role = %v", s, role)
				}
			}
		}
	}
}

func TestLocateBijection(t *testing.T) {
	g := Geometry{Disks: 5, StripeUnit: 4 << 10, DiskSize: 1 << 20, Level: RAID5}
	seen := map[[2]int64]int64{} // (disk, diskOff) -> addr
	step := int64(4 << 10)
	for addr := int64(0); addr < g.Capacity(); addr += step {
		loc := g.Locate(addr)
		key := [2]int64{int64(loc.Disk), loc.DiskOff}
		if prev, dup := seen[key]; dup {
			t.Fatalf("addresses %d and %d map to same physical location %v", prev, addr, key)
		}
		seen[key] = addr
		// Round-trip through RoleOf.
		role, idx := g.RoleOf(loc.Stripe, loc.Disk)
		if role != Data || idx != loc.DataIdx {
			t.Fatalf("RoleOf disagrees with Locate at addr %d", addr)
		}
	}
}

func TestLocateQuick(t *testing.T) {
	g := geo5()
	prop := func(raw int64) bool {
		addr := raw % g.Capacity()
		if addr < 0 {
			addr += g.Capacity()
		}
		loc := g.Locate(addr)
		if loc.Disk < 0 || loc.Disk >= g.Disks {
			return false
		}
		if loc.DiskOff < 0 || loc.DiskOff >= g.DiskSize {
			return false
		}
		// Stripe unit boundaries respected.
		return loc.DiskOff/g.StripeUnit == loc.Stripe
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSplitCoversRangeExactly(t *testing.T) {
	g := geo5()
	prop := func(rawOff, rawLen int64) bool {
		capb := g.Capacity()
		off := rawOff % capb
		if off < 0 {
			off += capb
		}
		maxLen := capb - off
		length := rawLen % (256 << 10)
		if length < 0 {
			length = -length
		}
		if length > maxLen {
			length = maxLen
		}
		spans := g.Split(off, length)
		var total int64
		addr := off
		for _, sp := range spans {
			for _, e := range sp.Extents {
				if e.ArrOff != addr {
					return false
				}
				if e.Stripe != sp.Stripe {
					return false
				}
				if e.Len <= 0 || e.UnitOff+e.Len > g.StripeUnit {
					return false
				}
				loc := g.Locate(e.ArrOff)
				if loc.Disk != e.Disk || loc.DiskOff != e.DiskOff || loc.DataIdx != e.DataIdx {
					return false
				}
				addr += e.Len
				total += e.Len
			}
		}
		return total == length
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSplitFullStripeDetection(t *testing.T) {
	g := geo5()
	spans := g.Split(0, g.StripeDataBytes())
	if len(spans) != 1 {
		t.Fatalf("full-stripe write split into %d spans", len(spans))
	}
	if !spans[0].FullStripe(g) {
		t.Fatal("full stripe not detected")
	}
	spans = g.Split(0, g.StripeDataBytes()-1)
	if spans[0].FullStripe(g) {
		t.Fatal("partial stripe misdetected as full")
	}
}

func TestSplitEmptyRange(t *testing.T) {
	g := geo5()
	if spans := g.Split(100, 0); len(spans) != 0 {
		t.Fatalf("empty range produced %d spans", len(spans))
	}
}

func TestLevelStrings(t *testing.T) {
	if RAID0.String() != "RAID0" || RAID5.String() != "RAID5" || RAID6.String() != "RAID6" {
		t.Fatal("level names wrong")
	}
	if Data.String() != "data" || Parity.String() != "parity" || ParityQ.String() != "parityQ" {
		t.Fatal("role names wrong")
	}
}

func TestQParityEvenlySpread(t *testing.T) {
	g := geo5()
	g.Level = RAID6
	counts := make([]int, g.Disks)
	for s := int64(0); s < 100; s++ {
		counts[g.QDisk(s)]++
	}
	for d, c := range counts {
		if c != 20 {
			t.Fatalf("disk %d holds %d Q units out of 100 stripes", d, c)
		}
	}
	// P and Q never collide and rotate together.
	for s := int64(0); s < 50; s++ {
		if g.QDisk(s) == g.ParityDisk(s) {
			t.Fatalf("stripe %d: P and Q on the same disk", s)
		}
	}
}
