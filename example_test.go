package afraid_test

import (
	"fmt"
	"log"
	"time"

	"afraid"
)

// The functional store in five lines: open over block devices, write
// (one disk I/O — no parity in the critical path), then make the array
// fully redundant with a parity point.
func ExampleOpenStore() {
	devs := make([]afraid.BlockDevice, 5)
	for i := range devs {
		devs[i] = afraid.NewMemDevice(1 << 20)
	}
	store, err := afraid.OpenStore(devs, &afraid.MemNVRAM{}, afraid.StoreOptions{
		Mode:            afraid.StoreAFRAID,
		DisableScrubber: true, // explicit parity points for the example
	})
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()

	store.WriteAt([]byte("frequently redundant"), 0)
	fmt.Println("dirty stripes after write:", store.DirtyStripes())
	store.Flush()
	fmt.Println("dirty stripes after flush:", store.DirtyStripes())
	// Output:
	// dirty stripes after write: 1
	// dirty stripes after flush: 0
}

// Replaying a catalog workload on the simulated array reproduces the
// paper's measurements; here RAID 5's small-update penalty shows up
// directly against AFRAID on the same trace.
func ExampleSimulateTrace() {
	p, err := afraid.WorkloadParams("cello-news", 30*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	capacity := afraid.DefaultSimConfig(afraid.SimRAID5).Geometry.Capacity()
	tr, err := afraid.GenerateTrace(p, capacity, 1996)
	if err != nil {
		log.Fatal(err)
	}
	r5, _ := afraid.SimulateTrace(afraid.DefaultSimConfig(afraid.SimRAID5), tr)
	af, _ := afraid.SimulateTrace(afraid.DefaultSimConfig(afraid.SimAFRAID), tr)
	fmt.Println("AFRAID faster:", af.MeanIOTime < r5.MeanIOTime)
	fmt.Println("exposed part of the run:", af.FracUnprotected > 0)
	// Output:
	// AFRAID faster: true
	// exposed part of the run: true
}

// The §3 analytics answer "how much availability is enough" without any
// simulation.
func ExampleAvailParams() {
	p := afraid.DefaultAvailParams()
	fmt.Printf("RAID5 disk-related MTTDL: %.3g hours\n", p.RAID5CatastrophicMTTDL())
	fmt.Printf("overall, support-limited: %.3g hours\n", p.OverallMTTDL(p.RAID5CatastrophicMTTDL()))
	// An AFRAID run measured 10%% unprotected time and 1 MB mean lag:
	rep := p.AFRAIDReport(0.10, 1e6)
	fmt.Printf("AFRAID overall: %.3g hours\n", rep.OverallMTTDL)
	// Output:
	// RAID5 disk-related MTTDL: 4.17e+09 hours
	// overall, support-limited: 2e+06 hours
	// AFRAID overall: 1.33e+06 hours
}
