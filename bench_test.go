package afraid

// The benchmark harness regenerates every table and figure of the
// paper's evaluation (run `go test -bench . -benchmem`):
//
//	BenchmarkTable2    — Figure 2 / Table 2: mean I/O time per workload
//	                     under RAID 5, AFRAID, RAID 0 (reported as
//	                     meanIO-ms and speedup-x metrics).
//	BenchmarkTable3    — Table 3: pure-AFRAID availability per workload
//	                     (unprot-pct, lag-KB, overall MTTDL).
//	BenchmarkTable4    — Table 4: the MTTDL_x ladder (achieved/target).
//	BenchmarkFigure3   — Figure 3: the tradeoff curve's geometric means.
//	BenchmarkFigure4   — Figure 4: per-workload policy spread.
//	BenchmarkAblation* — DESIGN.md ablation sweeps.
//	Benchmark<micro>   — substrate microbenchmarks (XOR, GF(2^8) P+Q,
//	                     disk model, functional store data path).
//
// Simulation benchmarks use shorter traces than cmd/experiments (whose
// 5-minute runs are the recorded numbers in EXPERIMENTS.md); the shapes
// are the same.

import (
	"fmt"
	"io"
	"testing"
	"time"

	"afraid/internal/disk"
	"afraid/internal/exp"
	"afraid/internal/parity"
	"afraid/internal/tier"
)

const benchTraceDur = 30 * time.Second

// benchWorkloads is the evaluation set, ordered as in the paper.
var benchWorkloads = Workloads()

// runSim builds and replays one workload/mode pair.
func runSim(b *testing.B, mode SimMode, workload string, policy SimPolicy) SimMetrics {
	b.Helper()
	cfg := DefaultSimConfig(mode)
	cfg.Policy = policy
	m, err := SimulateWorkload(cfg, workload, benchTraceDur, 1996)
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// BenchmarkTable2 regenerates the relative-performance comparison: for
// every workload, the mean I/O time under RAID 5, AFRAID, and RAID 0.
func BenchmarkTable2(b *testing.B) {
	for _, w := range benchWorkloads {
		for _, mode := range []SimMode{SimRAID5, SimAFRAID, SimRAID0} {
			b.Run(fmt.Sprintf("%s/%v", w, mode), func(b *testing.B) {
				var m SimMetrics
				for i := 0; i < b.N; i++ {
					m = runSim(b, mode, w, SimPolicy{})
				}
				b.ReportMetric(float64(m.MeanIOTime)/1e6, "meanIO-ms")
				if mode != SimRAID5 {
					r5 := runSim(b, SimRAID5, w, SimPolicy{})
					b.ReportMetric(float64(r5.MeanIOTime)/float64(m.MeanIOTime), "speedup-x")
				}
			})
		}
	}
}

// BenchmarkTable3 regenerates the pure-AFRAID availability measures.
func BenchmarkTable3(b *testing.B) {
	ap := DefaultAvailParams()
	for _, w := range benchWorkloads {
		b.Run(w, func(b *testing.B) {
			var m SimMetrics
			for i := 0; i < b.N; i++ {
				m = runSim(b, SimAFRAID, w, SimPolicy{})
			}
			rep := ap.AFRAIDReport(m.FracUnprotected, m.MeanParityLag)
			b.ReportMetric(100*m.FracUnprotected, "unprot-pct")
			b.ReportMetric(m.MeanParityLag/1e3, "lag-KB")
			b.ReportMetric(rep.OverallMTTDL/1e6, "overallMTTDL-Mh")
			b.ReportMetric(rep.DiskMDLR, "MDLR-B/h")
		})
	}
}

// BenchmarkTable4 regenerates the MTTDL_x policy ladder on the busiest
// and one bursty workload (the full grid is cmd/experiments -exp table4).
func BenchmarkTable4(b *testing.B) {
	ap := DefaultAvailParams()
	for _, w := range []string{"att", "cello-usr"} {
		for _, target := range []float64{10e6, 2.5e6, 1e6} {
			b.Run(fmt.Sprintf("%s/target=%.2gMh", w, target/1e6), func(b *testing.B) {
				var m SimMetrics
				for i := 0; i < b.N; i++ {
					m = runSim(b, SimAFRAID, w, SimPolicy{TargetMTTDL: target, DirtyThreshold: 20})
				}
				achieved := ap.AFRAIDDiskMTTDL(m.FracUnprotected)
				b.ReportMetric(achieved/target, "achieved/target")
				b.ReportMetric(float64(m.MeanIOTime)/1e6, "meanIO-ms")
			})
		}
	}
}

// BenchmarkFigure3 regenerates the performance/availability tradeoff
// curve: one sub-benchmark per policy point, metrics relative to RAID 5.
func BenchmarkFigure3(b *testing.B) {
	var grid *exp.Grid
	build := func(b *testing.B) *exp.Grid {
		g, err := exp.Run(exp.Config{Duration: benchTraceDur, Seed: 1996})
		if err != nil {
			b.Fatal(err)
		}
		return g
	}
	b.Run("grid", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			grid = build(b)
		}
		for _, p := range grid.Figure3() {
			b.ReportMetric(p.RelPerf, "relPerf-"+p.Policy)
		}
	})
	if grid == nil {
		grid = build(b)
	}
	for _, p := range grid.Figure3() {
		b.Run(p.Policy, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = p
			}
			b.ReportMetric(p.RelPerf, "relPerf-x")
			b.ReportMetric(100*p.RelAvail, "relAvail-pct")
			b.ReportMetric(p.MeanIOTimeMs, "meanIO-ms")
		})
	}
}

// BenchmarkFigure4 regenerates the per-workload policy curves,
// reporting each workload's spread across the AFRAID policy ladder
// (bursty traces are flat, busy traces decline smoothly).
func BenchmarkFigure4(b *testing.B) {
	for _, w := range benchWorkloads {
		b.Run(w, func(b *testing.B) {
			var pure, strict SimMetrics
			for i := 0; i < b.N; i++ {
				pure = runSim(b, SimAFRAID, w, SimPolicy{})
				strict = runSim(b, SimAFRAID, w, SimPolicy{TargetMTTDL: 10e6, DirtyThreshold: 20})
			}
			b.ReportMetric(float64(pure.MeanIOTime)/1e6, "pure-ms")
			b.ReportMetric(float64(strict.MeanIOTime)/1e6, "strict-ms")
			b.ReportMetric(float64(strict.MeanIOTime)/float64(pure.MeanIOTime), "spread-x")
		})
	}
}

// BenchmarkAblationIdleDelay sweeps the idle-detection threshold
// (DESIGN.md ablation #1).
func BenchmarkAblationIdleDelay(b *testing.B) {
	for _, d := range []time.Duration{10 * time.Millisecond, 100 * time.Millisecond, time.Second} {
		b.Run(d.String(), func(b *testing.B) {
			var m SimMetrics
			for i := 0; i < b.N; i++ {
				m = runSim(b, SimAFRAID, "cello-usr", SimPolicy{IdleDelay: d})
			}
			b.ReportMetric(100*m.FracUnprotected, "unprot-pct")
			b.ReportMetric(float64(m.MeanIOTime)/1e6, "meanIO-ms")
		})
	}
}

// BenchmarkAblationDirtyThreshold sweeps the stripe-count bound
// (DESIGN.md ablation #2).
func BenchmarkAblationDirtyThreshold(b *testing.B) {
	for _, th := range []int{0, 5, 20, 100} {
		b.Run(fmt.Sprintf("th=%d", th), func(b *testing.B) {
			var m SimMetrics
			for i := 0; i < b.N; i++ {
				m = runSim(b, SimAFRAID, "att", SimPolicy{DirtyThreshold: th})
			}
			b.ReportMetric(m.MaxParityLag/1e3, "maxlag-KB")
			b.ReportMetric(float64(m.MeanIOTime)/1e6, "meanIO-ms")
		})
	}
}

// BenchmarkAblationCoalesce compares adjacent-stripe rebuild coalescing
// (DESIGN.md ablation #3).
func BenchmarkAblationCoalesce(b *testing.B) {
	for _, on := range []bool{false, true} {
		b.Run(fmt.Sprintf("coalesce=%v", on), func(b *testing.B) {
			var m SimMetrics
			for i := 0; i < b.N; i++ {
				m = runSim(b, SimAFRAID, "netware", SimPolicy{CoalesceAdjacent: on})
			}
			b.ReportMetric(float64(m.EpisodesCutShort), "cutShort")
			b.ReportMetric(100*m.FracUnprotected, "unprot-pct")
		})
	}
}

// BenchmarkAblationWidth sweeps stripe width (DESIGN.md ablation #4:
// AFRAID's rebuild cost is linear in width).
func BenchmarkAblationWidth(b *testing.B) {
	var rows []exp.WidthResult
	b.Run("sweep", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var err error
			rows, err = exp.WidthSweep("cello-usr", benchTraceDur, 1996)
			if err != nil {
				b.Fatal(err)
			}
		}
		for _, r := range rows {
			b.ReportMetric(r.SpeedupX, fmt.Sprintf("speedup-%dd", r.Disks))
		}
	})
}

// BenchmarkAblationRelatedWork compares AFRAID against the §2 parity-
// logging baseline, including the log-pressure failure mode.
func BenchmarkAblationRelatedWork(b *testing.B) {
	var rows []exp.RelatedWorkRow
	b.Run("att", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var err error
			rows, err = exp.RelatedWorkSweep("att", benchTraceDur, 1996)
			if err != nil {
				b.Fatal(err)
			}
		}
		for _, r := range rows {
			b.ReportMetric(float64(r.Metrics.MeanIOTime)/1e6, "ms-"+r.Label)
		}
	})
}

// BenchmarkAblationRAID6 runs the §5 double-parity extension sweep.
func BenchmarkAblationRAID6(b *testing.B) {
	var rows []exp.RAID6Row
	b.Run("att", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var err error
			rows, err = exp.RAID6Sweep("att", benchTraceDur, 1996)
			if err != nil {
				b.Fatal(err)
			}
		}
		for _, r := range rows {
			b.ReportMetric(float64(r.Metrics.MeanIOTime)/1e6, "ms-"+r.Label)
		}
	})
}

// BenchmarkAblationGranularity sweeps the §5 sub-stripe marking factor.
func BenchmarkAblationGranularity(b *testing.B) {
	for _, m := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("M=%d", m), func(b *testing.B) {
			var res SimMetrics
			for i := 0; i < b.N; i++ {
				res = runSim(b, SimAFRAID, "cello-news", SimPolicy{MarkGranularity: m})
			}
			b.ReportMetric(res.MeanParityLag/1e3, "lag-KB")
			b.ReportMetric(float64(res.MeanIOTime)/1e6, "meanIO-ms")
		})
	}
}

// --- substrate microbenchmarks ---

// BenchmarkXOR8K measures the parity kernel on a stripe-unit block.
func BenchmarkXOR8K(b *testing.B) {
	dst := make([]byte, 8<<10)
	src := make([]byte, 8<<10)
	b.SetBytes(8 << 10)
	for i := 0; i < b.N; i++ {
		parity.XOR(dst, src)
	}
}

// BenchmarkPQ8K measures the RAID 6 P+Q encode over a 4-data stripe.
func BenchmarkPQ8K(b *testing.B) {
	blocks := make([][]byte, 4)
	for i := range blocks {
		blocks[i] = make([]byte, 8<<10)
		for j := range blocks[i] {
			blocks[i][j] = byte(i*j + 7)
		}
	}
	p := make([]byte, 8<<10)
	q := make([]byte, 8<<10)
	b.SetBytes(4 * 8 << 10)
	for i := 0; i < b.N; i++ {
		parity.ComputePQ(p, q, blocks...)
	}
}

// BenchmarkDiskServiceTime measures the mechanical disk model.
func BenchmarkDiskServiceTime(b *testing.B) {
	d := disk.New(disk.C3325(), 0)
	now := time.Duration(0)
	rng := uint64(99)
	capBytes := disk.C3325().CapacityBytes()
	for i := 0; i < b.N; i++ {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		off := int64(rng%uint64(capBytes-65536)) / 512 * 512
		now += d.ServiceTime(now, disk.Op{Offset: off, Length: 8 << 10})
	}
}

// BenchmarkStoreWrite measures the functional store's write path in
// AFRAID vs RAID 5 mode (the real-code analogue of the small-update
// penalty: RAID 5 does 2 reads + 2 writes per small write).
func BenchmarkStoreWrite(b *testing.B) {
	for _, mode := range []StoreMode{StoreAFRAID, StoreRAID5, StoreRAID0, StoreRAID6, StoreAFRAID6} {
		b.Run(mode.String(), func(b *testing.B) {
			devs := make([]BlockDevice, 5)
			for i := range devs {
				devs[i] = NewMemDevice(16 << 20)
			}
			s, err := OpenStore(devs, nil, StoreOptions{Mode: mode, DisableScrubber: true})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			buf := make([]byte, 8<<10)
			stripes := s.Geometry().Stripes()
			b.SetBytes(8 << 10)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				off := (int64(i) % stripes) * s.Geometry().StripeDataBytes()
				if _, err := s.WriteAt(buf, off); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStoreScrub measures parity rebuild throughput. ReportAllocs
// guards the pooled-arena property: a steady-state single-stripe
// parity point reads into a recycled stripe buffer and runs inline on
// the caller's goroutine, so allocs/op must stay at zero once the pool
// is warm.
func BenchmarkStoreScrub(b *testing.B) {
	devs := make([]BlockDevice, 5)
	for i := range devs {
		devs[i] = NewMemDevice(32 << 20)
	}
	s, err := OpenStore(devs, nil, StoreOptions{Mode: StoreAFRAID, DisableScrubber: true})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	buf := make([]byte, 8<<10)
	stripes := s.Geometry().Stripes()
	b.SetBytes(s.Geometry().StripeDataBytes())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		off := (int64(i) % stripes) * s.Geometry().StripeDataBytes()
		if _, err := s.WriteAt(buf, off); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if err := s.ParityPoint(off, s.Geometry().StripeDataBytes()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkChecksumVerify measures what the end-to-end block checksums
// cost on the hot paths: one CRC32C verify per unit read, one CRC32C +
// 8-byte slot write per unit written. RAID 0 isolates the checksum
// layer from parity work; the checksums=off runs are the baseline.
func BenchmarkChecksumVerify(b *testing.B) {
	for _, checksums := range []bool{false, true} {
		devs := make([]BlockDevice, 5)
		for i := range devs {
			devs[i] = NewMemDevice(16 << 20)
		}
		s, err := OpenStore(devs, nil, StoreOptions{
			Mode: StoreRAID0, DisableScrubber: true, Checksums: checksums,
		})
		if err != nil {
			b.Fatal(err)
		}
		span := s.Geometry().StripeDataBytes()
		stripes := s.Geometry().Stripes()
		buf := make([]byte, span)
		name := "off"
		if checksums {
			name = "on"
		}
		b.Run("write/checksums="+name, func(b *testing.B) {
			b.SetBytes(span)
			for i := 0; i < b.N; i++ {
				if _, err := s.WriteAt(buf, (int64(i)%stripes)*span); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("read/checksums="+name, func(b *testing.B) {
			b.SetBytes(span)
			for i := 0; i < b.N; i++ {
				if _, err := s.ReadAt(buf, (int64(i)%stripes)*span); err != nil {
					b.Fatal(err)
				}
			}
		})
		s.Close()
	}
}

// latencyDev adds a fixed service time to every I/O, standing in for a
// real disk so the flush benchmark measures I/O overlap rather than
// memcpy speed. Without it, memory-backed rebuilds are bandwidth-bound
// and worker scaling is invisible.
type latencyDev struct {
	BlockDevice
	lat time.Duration
}

func (d *latencyDev) ReadAt(p []byte, off int64) (int, error) {
	time.Sleep(d.lat)
	return d.BlockDevice.ReadAt(p, off)
}

func (d *latencyDev) WriteAt(p []byte, off int64) (int, error) {
	time.Sleep(d.lat)
	return d.BlockDevice.WriteAt(p, off)
}

// BenchmarkFlushThroughput measures whole-backlog drain rate in
// stripes/s as the scrub worker pool widens. Every stripe is dirtied,
// then one Flush drains the array; with N workers, N stripes' reads
// and parity writes are in flight at once against ~50µs devices.
func BenchmarkFlushThroughput(b *testing.B) {
	const (
		lat  = 50 * time.Microsecond
		unit = 8 << 10
		size = 4 << 20 // 512 stripes per flush on 5 disks
	)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			devs := make([]BlockDevice, 5)
			for i := range devs {
				devs[i] = &latencyDev{NewMemDevice(size), lat}
			}
			s, err := OpenStore(devs, nil, StoreOptions{Mode: StoreAFRAID,
				StripeUnit: unit, DisableScrubber: true, ScrubWorkers: workers})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			span := s.Geometry().StripeDataBytes()
			stripes := s.Geometry().Stripes()
			buf := make([]byte, span)
			var drained int64
			var inFlush time.Duration
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				for st := int64(0); st < stripes; st++ {
					if _, err := s.WriteAt(buf, st*span); err != nil {
						b.Fatal(err)
					}
				}
				b.StartTimer()
				start := time.Now()
				if err := s.Flush(); err != nil {
					b.Fatal(err)
				}
				inFlush += time.Since(start)
				drained += stripes
			}
			b.ReportMetric(float64(drained)/inFlush.Seconds(), "stripes/s")
		})
	}
}

// BenchmarkTierSmallWrites measures the hybrid tier's reason to exist:
// 4 KB random writes over a hot working set against ~50µs member
// disks, hybrid (internal/tier: mirrored front over an AFRAID back)
// vs bare AFRAID vs RAID 5. The front devices model faster media (no
// added latency), so once the working set is promoted a small write
// costs two mirror copies instead of a member-disk I/O; the hybrid
// leg must beat bare AFRAID for the tier to pay its way, and RAID 5
// shows the full small-update penalty both are avoiding.
func BenchmarkTierSmallWrites(b *testing.B) {
	const (
		lat        = 50 * time.Microsecond
		ioSize     = 4 << 10
		extentSize = 64 << 10
		workingSet = int64(16 * extentSize) // hot region, fits the front
		backSize   = 16 << 20
	)
	newBack := func(mode StoreMode) *Store {
		devs := make([]BlockDevice, 5)
		for i := range devs {
			devs[i] = &latencyDev{NewMemDevice(backSize), lat}
		}
		s, err := OpenStore(devs, nil, StoreOptions{Mode: mode, DisableScrubber: true})
		if err != nil {
			b.Fatal(err)
		}
		return s
	}
	run := func(b *testing.B, w io.WriterAt) {
		buf := make([]byte, ioSize)
		rng := uint64(1996)
		b.SetBytes(ioSize)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rng ^= rng << 13
			rng ^= rng >> 7
			rng ^= rng << 17
			off := int64(rng%uint64(workingSet/ioSize)) * ioSize
			if _, err := w.WriteAt(buf, off); err != nil {
				b.Fatal(err)
			}
		}
	}

	for _, mode := range []StoreMode{StoreRAID5, StoreAFRAID} {
		b.Run(mode.String(), func(b *testing.B) {
			s := newBack(mode)
			defer s.Close()
			run(b, s)
		})
	}
	b.Run("hybrid", func(b *testing.B) {
		back := newBack(StoreAFRAID)
		defer back.Close()
		// Two mirror copies with room for the working set plus slack;
		// each slot carries a 16-byte tag trailer.
		frontSize := int64(24 * (extentSize + 16))
		front := []BlockDevice{NewMemDevice(frontSize), NewMemDevice(frontSize)}
		h, err := tier.Open(back, front, &MemNVRAM{}, tier.Options{
			ExtentSize:      extentSize,
			MaxDirtyBytes:   1 << 30, // never trip the pressure valve
			DisableMigrator: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		defer h.Close()
		// Promote the working set so the timed loop measures steady-state
		// front hits, not one-time promotions.
		warm := make([]byte, ioSize)
		for off := int64(0); off < workingSet; off += extentSize {
			if _, err := h.WriteAt(warm, off); err != nil {
				b.Fatal(err)
			}
		}
		run(b, h)
		ts := h.TierStats()
		total := ts.FrontWriteHits + ts.WriteArounds
		if total > 0 {
			b.ReportMetric(float64(ts.FrontWriteHits)/float64(total), "front-hit-frac")
		}
	})
}

// BenchmarkDegradedMode runs the failure-injection study: a mid-trace
// disk failure with hot-spare rebuild, RAID 5 vs AFRAID.
func BenchmarkDegradedMode(b *testing.B) {
	var rows []exp.DegradedRow
	b.Run("cello-usr", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var err error
			rows, err = exp.DegradedSweep("cello-usr", benchTraceDur, 1996)
			if err != nil {
				b.Fatal(err)
			}
		}
		for _, r := range rows {
			b.ReportMetric(float64(r.Metrics.MeanIOTime)/1e6, "ms-"+r.Label)
			b.ReportMetric(float64(r.Metrics.LostUnitsAtFailure), "lost-"+r.Label)
		}
	})
}
