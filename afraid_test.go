package afraid

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// These tests exercise the public facade end to end: the functional
// store, the simulator, the workload catalog, and the availability
// analytics, all through the exported API only.

func TestPublicStoreLifecycle(t *testing.T) {
	devs := make([]BlockDevice, 5)
	for i := range devs {
		devs[i] = NewMemDevice(1 << 20)
	}
	s, err := OpenStore(devs, &MemNVRAM{}, StoreOptions{Mode: StoreAFRAID, DisableScrubber: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	msg := []byte("public api round trip")
	if _, err := s.WriteAt(msg, 4096); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if _, err := s.ReadAt(got, 4096); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("round trip mismatch")
	}
	if s.DirtyStripes() != 1 {
		t.Fatalf("dirty = %d", s.DirtyStripes())
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if s.DirtyStripes() != 0 {
		t.Fatal("flush left dirty stripes")
	}
}

func TestPublicSimulateWorkload(t *testing.T) {
	m, err := SimulateWorkload(DefaultSimConfig(SimAFRAID), "hplajw", 20*time.Second, 3)
	if err != nil {
		t.Fatal(err)
	}
	if m.Completed == 0 {
		t.Fatal("no requests completed")
	}
	if m.Mode != SimAFRAID {
		t.Fatalf("mode = %v", m.Mode)
	}
}

func TestPublicTraceRoundTrip(t *testing.T) {
	p, err := WorkloadParams("snake", 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	capacity := DefaultSimConfig(SimRAID5).Geometry.Capacity()
	tr, err := GenerateTrace(p, capacity, 9)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Records) != len(tr.Records) {
		t.Fatalf("record count %d != %d", len(got.Records), len(tr.Records))
	}
	m, err := SimulateTrace(DefaultSimConfig(SimRAID5), got)
	if err != nil {
		t.Fatal(err)
	}
	if m.Completed != uint64(len(got.Records)) {
		t.Fatalf("completed %d of %d", m.Completed, len(got.Records))
	}
}

func TestPublicWorkloadCatalog(t *testing.T) {
	names := Workloads()
	if len(names) != 10 {
		t.Fatalf("catalog has %d workloads, want the paper's 10", len(names))
	}
	want := []string{"hplajw", "snake", "cello-usr", "cello-news", "netware",
		"att", "as400-1", "as400-2", "as400-3", "as400-4"}
	for i, w := range want {
		if names[i] != w {
			t.Fatalf("catalog order %v, want %v", names, want)
		}
	}
}

func TestPublicAvailabilityFacade(t *testing.T) {
	ap := DefaultAvailParams()
	r5 := ap.RAID5Report()
	af := ap.AFRAIDReport(0.1, 1e6)
	r0 := ap.RAID0Report()
	if !(r0.OverallMTTDL < af.OverallMTTDL && af.OverallMTTDL < r5.OverallMTTDL) {
		t.Fatalf("ordering violated: %g %g %g", r0.OverallMTTDL, af.OverallMTTDL, r5.OverallMTTDL)
	}
	pw := PowerModel{MainsMTTF: 4300, WriteDuty: 0.1, LossBytes: 30e3}
	if pw.MTTDL() != 43000 {
		t.Fatalf("power MTTDL = %g", pw.MTTDL())
	}
}

func TestPublicDiskModel(t *testing.T) {
	p := DiskModelC3325()
	if p.RPM != 5400 {
		t.Fatalf("RPM = %d", p.RPM)
	}
	if p.CapacityBytes() < 2e9 {
		t.Fatalf("capacity = %d", p.CapacityBytes())
	}
}

func TestPublicSimModesComparable(t *testing.T) {
	// The paper's headline, through the public API only.
	p, _ := WorkloadParams("cello-news", 30*time.Second)
	capacity := DefaultSimConfig(SimRAID5).Geometry.Capacity()
	tr, err := GenerateTrace(p, capacity, 1996)
	if err != nil {
		t.Fatal(err)
	}
	r5, err := SimulateTrace(DefaultSimConfig(SimRAID5), tr)
	if err != nil {
		t.Fatal(err)
	}
	af, err := SimulateTrace(DefaultSimConfig(SimAFRAID), tr)
	if err != nil {
		t.Fatal(err)
	}
	if af.MeanIOTime >= r5.MeanIOTime {
		t.Fatalf("AFRAID %v not faster than RAID5 %v", af.MeanIOTime, r5.MeanIOTime)
	}
}

func TestPublicFaultInjection(t *testing.T) {
	cfg := DefaultSimConfig(SimAFRAID)
	cfg.Geometry.DiskSize = 8 << 20 // small array for a fast sweep
	cfg.Fault = SimFault{At: 500 * time.Millisecond, Disk: 2, SpareRebuild: true}
	m, err := SimulateWorkload(cfg, "hplajw", 20*time.Second, 3)
	if err != nil {
		t.Fatal(err)
	}
	if m.FailedAt == 0 {
		t.Fatal("fault not injected")
	}
	if m.RebuildDoneAt <= m.FailedAt {
		t.Fatal("spare rebuild did not complete")
	}
}

func TestPublicRAID6Store(t *testing.T) {
	devs := make([]BlockDevice, 6)
	for i := range devs {
		devs[i] = NewMemDevice(1 << 20)
	}
	s, err := OpenStore(devs, &MemNVRAM{}, StoreOptions{Mode: StoreAFRAID6, DisableScrubber: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	msg := []byte("double parity, single deferral")
	if _, err := s.WriteAt(msg, 0); err != nil {
		t.Fatal(err)
	}
	// Defer-Q: survives a failure even while dirty.
	if err := s.FailDisk(s.Geometry().DataDisk(0, 0)); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if _, err := s.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("reconstructed data mismatch")
	}
}
